//! Vectorized polynomial `exp` — the CPU analogue of the fast `exp` inside
//! the paper's fused Triton softmax kernels.
//!
//! `f32::exp` lowers to a libm call per element, which is the dominant cost
//! of the softmax hot loop (see `BENCH_kernels.json` before this kernel
//! landed: softmax was 1.05× vs seed while LayerNorm was 5×). This module
//! replaces it with a branch-free range-reduced polynomial that the
//! compiler auto-vectorizes 8 lanes wide under the workspace's
//! `x86-64-v3` target:
//!
//! 1. range-reduce `x = n·ln2 + r` with `|r| ≤ ln2/2`, using the
//!    round-to-nearest "magic number" trick and a hi/lo split of `ln2`
//!    (Cephes style) so the reduction is exact to beyond f32 precision;
//! 2. approximate `exp(r)` with a degree-6 minimax polynomial
//!    (max relative error ~2e-8, well under an f32 ulp);
//! 3. scale by `2^n` via exponent-bit construction, split into two factors
//!    so gradual underflow into denormals is handled without branches.
//!
//! Accuracy: ≤ 4 ulp vs `f32::exp` over the full finite range (property
//! tested, including ±inf / NaN / denormal-result edges). Determinism: the
//! per-element operation sequence is fixed — the 8-lane slice paths apply
//! the *same* scalar recipe per lane, and reductions use a fixed striped
//! order — so results are bit-identical at any thread count.

// The constants below are written with their full decimal expansions on
// purpose: LN2_HI is *exactly* 0.693359375 (low mantissa bits zero — the
// whole point of the hi/lo split), and the minimax coefficients document
// the true Cephes values even where f32 rounds the last digit.
#![allow(clippy::excessive_precision)]

/// Lane width of the vectorized paths (AVX2 = 8 × f32).
pub const LANES: usize = 8;

/// Above this input `exp(x)` overflows f32 (`ln(f32::MAX)`).
const EXP_HI: f32 = 88.722_839;
/// Below this input `exp(x)` underflows to zero even as a denormal
/// (`ln(2^-150)`).
const EXP_LO: f32 = -103.972_08;

const LOG2E: f32 = std::f32::consts::LOG2_E;
/// `1.5 * 2^23`: adding then subtracting rounds to nearest integer for
/// |x| < 2^22 without a `round` call (which does not auto-vectorize).
const ROUND_MAGIC: f32 = 12_582_912.0;
/// Hi/lo split of ln2: `LN2_HI` has zeros in its low mantissa bits, so
/// `x - n*LN2_HI` is exact; `LN2_LO` restores full precision.
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
// Degree-6 minimax coefficients for exp(r) on [-ln2/2, ln2/2] (Cephes
// expf): exp(r) ≈ 1 + r + r²·P(r).
const C0: f32 = 1.987_569_15e-4;
const C1: f32 = 1.398_199_95e-3;
const C2: f32 = 8.333_451_9e-3;
const C3: f32 = 4.166_579_6e-2;
const C4: f32 = 1.666_666_55e-1;
const C5: f32 = 5.000_000_1e-1;

/// Fast scalar `exp(x)`: same bit-for-bit recipe as the vectorized slice
/// paths, so mixing scalar tails with lane bodies stays deterministic.
#[inline(always)]
pub fn vexp(x: f32) -> f32 {
    // Clamp into the finite range; saturation is fixed up at the end.
    // NaN survives `clamp` and propagates through the arithmetic.
    let xc = x.clamp(EXP_LO, EXP_HI);
    let nf_magic = xc * LOG2E + ROUND_MAGIC;
    let nf = nf_magic - ROUND_MAGIC;
    let r = (xc - nf * LN2_HI) - nf * LN2_LO;
    // Estrin's scheme instead of Horner: the three pair terms evaluate in
    // parallel, cutting the FMA dependency chain from 6 deep to 3 so
    // out-of-order execution overlaps adjacent lanes/chunks (~1.5× on the
    // softmax hot loop; same coefficients, ≤1 ulp vs the Horner order).
    let r2 = r * r;
    let p01 = C0 * r + C1;
    let p23 = C2 * r + C3;
    let p45 = C4 * r + C5;
    let p = (p01 * r2 + p23) * r2 + p45;
    let q = (p * r) * r + r + 1.0;
    // 2^n as a product of two exponent-constructed factors: n in
    // [-150, 128] splits into halves within the normal exponent range,
    // and the single final rounding handles denormal results correctly.
    // The integer n already sits in the low mantissa bits of `nf_magic`:
    // for |n| < 2^22, bits(n + MAGIC) == bits(MAGIC) + n, so a bit
    // subtraction recovers it. (A `nf as i32` cast is Rust's *saturating*
    // float→int conversion, which lowers to `fptosi.sat` — LLVM refuses to
    // vectorize loops containing it, and the whole kernel falls back to
    // scalar code.) NaN inputs produce a garbage n here, but `q` is
    // already NaN then and NaN·s1·s2 stays NaN.
    let n = (nf_magic.to_bits() as i32).wrapping_sub(ROUND_MAGIC.to_bits() as i32);
    let n1 = n >> 1;
    let n2 = n - n1;
    let s1 = f32::from_bits(((n1 + 127) << 23) as u32);
    let s2 = f32::from_bits(((n2 + 127) << 23) as u32);
    let y = q * s1 * s2;
    // Saturation fixups (selects, not branches): overflow → +inf,
    // underflow → 0. NaN fails both compares and passes through.
    let y = if x > EXP_HI { f32::INFINITY } else { y };
    if x < EXP_LO {
        0.0
    } else {
        y
    }
}

/// In-place `exp` over a slice, 8 lanes at a time.
pub fn vexp_inplace(xs: &mut [f32]) {
    let mut chunks = xs.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        for v in chunk.iter_mut() {
            *v = vexp(*v);
        }
    }
    for v in chunks.into_remainder() {
        *v = vexp(*v);
    }
}

/// The softmax workhorse: `row[i] = exp(row[i] - shift)` in place, returning
/// the row sum via a fixed 8-lane striped reduction (deterministic at any
/// thread count; rows are never split across threads).
pub fn vexp_shift_sum(row: &mut [f32], shift: f32) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut chunks = row.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        for (l, v) in chunk.iter_mut().enumerate() {
            *v = vexp(*v - shift);
            acc[l] += *v;
        }
    }
    let mut sum = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for v in chunks.into_remainder() {
        *v = vexp(*v - shift);
        sum += *v;
    }
    sum
}

/// Maximum of a slice via an 8-lane striped scan (breaks the serial `maxss`
/// dependence chain of a plain fold). `f32::max` semantics: NaN entries are
/// ignored unless every entry is NaN. Returns `-inf` for an empty slice.
pub fn striped_max(xs: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (l, &v) in chunk.iter().enumerate() {
            lanes[l] = lanes[l].max(v);
        }
    }
    let mut m = lanes.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for &v in chunks.remainder() {
        m = m.max(v);
    }
    m
}

/// Ulp distance between two f32s of the same sign class (exp outputs are
/// always ≥ 0), treating equal bit patterns / both-NaN as 0 and an
/// inf-vs-finite mismatch as `i64::MAX`.
pub fn ulp_distance(a: f32, b: f32) -> i64 {
    if a == b || (a.is_nan() && b.is_nan()) {
        return 0;
    }
    if a.is_nan() != b.is_nan() {
        return i64::MAX;
    }
    if a.is_infinite() != b.is_infinite() {
        return i64::MAX;
    }
    (a.to_bits() as i64 - b.to_bits() as i64).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_std_exp_within_4_ulp_log_spaced() {
        // Log-spaced magnitudes from 1e-6 up to the overflow threshold,
        // both signs, plus zero.
        let mut worst = 0i64;
        let mut mag = 1e-6f32;
        while mag < 88.0 {
            for &x in &[mag, -mag] {
                let d = ulp_distance(vexp(x), x.exp());
                assert!(d <= 4, "vexp({x}) = {} vs {} ({d} ulp)", vexp(x), x.exp());
                worst = worst.max(d);
            }
            mag *= 1.07;
        }
        assert_eq!(vexp(0.0), 1.0);
        assert!(worst <= 4);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(vexp(f32::INFINITY), f32::INFINITY);
        assert_eq!(vexp(f32::NEG_INFINITY), 0.0);
        assert!(vexp(f32::NAN).is_nan());
        assert_eq!(vexp(100.0), f32::INFINITY);
        assert_eq!(vexp(89.0), f32::INFINITY);
        assert_eq!(vexp(-200.0), 0.0);
        // Denormal-result range: within a couple of denormal ulps of libm.
        for &x in &[-88.0f32, -90.0, -100.0, -103.0] {
            let d = ulp_distance(vexp(x), x.exp());
            assert!(d <= 4, "vexp({x}) = {} vs {} ({d} ulp)", vexp(x), x.exp());
        }
        // Denormal *inputs*: exp(tiny) == 1.0 exactly.
        assert_eq!(vexp(f32::from_bits(1)), 1.0);
        assert_eq!(vexp(-f32::from_bits(1)), 1.0);
    }

    #[test]
    fn slice_paths_match_scalar_bitwise() {
        let xs: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 1.37).collect();
        let mut a = xs.clone();
        vexp_inplace(&mut a);
        for (y, &x) in a.iter().zip(xs.iter()) {
            assert_eq!(y.to_bits(), vexp(x).to_bits());
        }
        let mut b = xs.clone();
        let shift = striped_max(&b);
        vexp_shift_sum(&mut b, shift);
        for (y, &x) in b.iter().zip(xs.iter()) {
            assert_eq!(y.to_bits(), vexp(x - shift).to_bits());
        }
    }

    #[test]
    fn shift_sum_is_deterministic_and_close() {
        let mut row: Vec<f32> = (0..101).map(|i| ((i * 37) % 19) as f32 * 0.3 - 2.0).collect();
        let m = striped_max(&row);
        let s1 = vexp_shift_sum(&mut row.clone(), m);
        let s2 = vexp_shift_sum(&mut row, m);
        assert_eq!(s1.to_bits(), s2.to_bits());
        let reference: f64 = row.iter().map(|&w| w as f64).sum();
        assert!((s1 as f64 - reference).abs() / reference < 1e-5);
    }

    #[test]
    fn striped_max_matches_fold() {
        let xs: Vec<f32> = (0..53).map(|i| ((i * 29) % 31) as f32 - 15.0).collect();
        let expect = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(striped_max(&xs), expect);
        assert_eq!(striped_max(&[]), f32::NEG_INFINITY);
    }
}
