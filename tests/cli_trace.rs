//! Black-box CLI tests for the global `--trace` flag and `trace-report`,
//! run against the real `scalefold` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scalefold(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scalefold"))
        .args(args)
        .output()
        .expect("spawn scalefold binary")
}

fn tmp_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("scalefold_cli_trace_{}_{name}", std::process::id()))
}

/// A `--trace` path that cannot be created fails *up front* with exit code
/// 1 and a diagnostic — the same contract as a malformed `--threads`.
#[test]
fn unwritable_trace_path_exits_one_with_diagnostic() {
    let out = scalefold(&["train", "1", "--trace", "/nonexistent-dir/out.json"]);
    assert_eq!(out.status.code(), Some(1), "must exit 1, not panic or succeed");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot write trace file '/nonexistent-dir/out.json'"),
        "stderr must say which path failed: {stderr}"
    );
    // It must fail before doing any training work.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("step"),
        "no training output expected after a bad --trace: {stdout}"
    );
}

/// `--trace` with no value is rejected like `--threads` with no value.
#[test]
fn trace_flag_without_value_exits_one() {
    let out = scalefold(&["train", "1", "--trace"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--trace expects an output path"), "{stderr}");
}

/// The documented end-to-end flow: a traced run writes Chrome-format JSON
/// with spans from the trainer, the loader, and the compute pool, and
/// `trace-report` renders its phase table.
#[test]
fn traced_train_emits_chrome_json_and_trace_report_reads_it() {
    let path = tmp_file("train.json");
    let out = scalefold(&["train", "2", "--trace", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&path).expect("trace file must exist");
    let trace = sf_trace::Trace::from_chrome_json(&text).expect("viewer-loadable JSON");
    for cat in ["step", "forward", "backward", "data_wait", "loader", "pool"] {
        assert!(
            trace.events.iter().any(|e| e.cat == cat),
            "trace must contain '{cat}' events (subsystem coverage)"
        );
    }

    let report = scalefold(&["trace-report", path.to_str().unwrap()]);
    assert_eq!(report.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert!(
        stdout.contains("per-step phase breakdown") && stdout.contains("data_wait"),
        "trace-report must print the phase table: {stdout}"
    );
    let _ = std::fs::remove_file(&path);
}

/// `trace-report` on a missing file is a clean error, not a panic.
#[test]
fn trace_report_missing_file_exits_one() {
    let out = scalefold(&["trace-report", "/nonexistent-dir/missing.json"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read trace file"), "{stderr}");
}
