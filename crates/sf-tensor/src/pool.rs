//! Scoped, dependency-free thread pool for the CPU compute backend.
//!
//! Every hot kernel in this crate (GEMM, LayerNorm, softmax, attention)
//! routes its outer loop through [`parallel_for`]. Design constraints, in
//! order:
//!
//! 1. **Determinism.** The pool only ever partitions *independent* output
//!    regions across threads; each item is computed by exactly one task with
//!    a fixed per-element accumulation order. Kernel output is therefore
//!    bit-identical for every thread count (asserted by the
//!    `parallel_determinism` test suite).
//! 2. **No dependencies.** The build environment has no registry access, so
//!    rayon is off the table. This is a plain `std` pool: persistent parked
//!    workers, a single published job slot, and atomic chunk claiming. No
//!    work stealing — chunks are claimed from a shared counter, which for
//!    the regular rectangular loops of dense kernels loses nothing to
//!    stealing and keeps the scheduler ~100 lines.
//! 3. **Safe nesting.** A parallel region that (transitively) re-enters
//!    [`parallel_for`] runs the inner loop serially instead of deadlocking:
//!    only one parallel region is active at a time (`run_lock`), and inner
//!    calls that fail the `try_lock` fall back to inline execution.
//! 4. **Small-input bypass.** Dispatch costs a few microseconds; callers
//!    pass an estimated per-item scalar-op cost and loops below
//!    [`SERIAL_THRESHOLD`] total ops run inline on the caller thread.
//!
//! Thread count resolution: [`set_num_threads`] wins; otherwise the
//! `SF_THREADS` environment variable (read once, at first use); otherwise
//! [`std::thread::available_parallelism`]. A count of 1 disables the pool
//! entirely — no worker threads are spawned and every loop runs inline.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Minimum estimated scalar-op count (`n_items * cost_per_item`) before a
/// loop is worth dispatching to the pool. Below this, [`parallel_for`] runs
/// inline: at ~1 op/cycle a loop this size finishes in ~40 µs, comparable
/// to the cost of waking and re-parking the workers.
pub const SERIAL_THRESHOLD: usize = 1 << 17;

/// Chunks handed out per worker thread. Oversubscription smooths load
/// imbalance from ragged edges without shrinking chunks so far that the
/// claim counter becomes contended.
const CHUNKS_PER_THREAD: usize = 4;

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

struct Registry {
    /// Configured thread count; 0 means "not yet resolved".
    configured: AtomicUsize,
    /// The live pool, rebuilt when the configured count changes.
    pool: Mutex<Option<Arc<PoolInner>>>,
    /// Held for the duration of one parallel region; `try_lock` failure on
    /// entry means a region is already active, so run inline (nesting).
    run_lock: Mutex<()>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        configured: AtomicUsize::new(0),
        pool: Mutex::new(None),
        run_lock: Mutex::new(()),
    })
}

fn default_threads() -> usize {
    match std::env::var("SF_THREADS") {
        Ok(s) => s.trim().parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or(1),
        Err(_) => thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The thread count kernels will use (resolving `SF_THREADS` /
/// `available_parallelism` on first call).
pub fn num_threads() -> usize {
    let reg = registry();
    match reg.configured.load(Ordering::Relaxed) {
        0 => {
            let n = default_threads();
            // A racing first call resolves the same value; last store wins.
            reg.configured.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the kernel thread count (clamped to ≥ 1). Takes effect on the
/// next parallel region; the worker set is rebuilt lazily.
pub fn set_num_threads(n: usize) {
    registry().configured.store(n.max(1), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Job: one published parallel loop
// ---------------------------------------------------------------------------

struct JobInner {
    /// Lifetime-erased pointer to the caller's loop body. Only dereferenced
    /// while `pending > 0`, which the caller outlives by construction.
    body: *const (dyn Fn(Range<usize>) + Sync),
    n_items: usize,
    chunk: usize,
    n_chunks: usize,
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Chunks claimed-and-not-yet-finished plus unclaimed chunks. The
    /// caller may return only once this reaches zero.
    pending: AtomicUsize,
    panicked: AtomicBool,
}

// SAFETY: `body` is only dereferenced for chunks claimed while
// `pending > 0`; the caller blocks until `pending == 0`, so the closure it
// points to is alive for every dereference. All other fields are atomics.
unsafe impl Send for JobInner {}
unsafe impl Sync for JobInner {}

type Job = Arc<JobInner>;

/// Claims and runs chunks until the counter is exhausted. Runs on workers
/// and on the calling thread alike.
///
/// When tracing is on, each participant's whole claim streak is recorded
/// retroactively as one `pool`/`tasks` span (per-chunk spans would drown
/// the trace: a single GEMM dispatches dozens of chunks).
fn run_chunks(pool: &PoolInner, job: &Job) {
    let tracing = sf_trace::is_enabled();
    let t_start = if tracing { sf_trace::now_us() } else { 0 };
    let mut claimed = 0usize;
    loop {
        let c = job.next.fetch_add(1, Ordering::Relaxed);
        if c >= job.n_chunks {
            if tracing && claimed > 0 {
                sf_trace::complete_span(
                    "pool",
                    "tasks",
                    t_start,
                    sf_trace::now_us(),
                    &[("chunks", claimed as f64)],
                );
            }
            return;
        }
        claimed += 1;
        let start = c * job.chunk;
        let end = (start + job.chunk).min(job.n_items);
        // SAFETY: see `JobInner::body`.
        let body = unsafe { &*job.body };
        if catch_unwind(AssertUnwindSafe(|| body(start..end))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = pool.done.lock().expect("done lock");
            pool.done_cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Pool: persistent parked workers
// ---------------------------------------------------------------------------

struct WorkSlot {
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct PoolInner {
    slot: Mutex<WorkSlot>,
    work_cv: Condvar,
    done: Mutex<()>,
    done_cv: Condvar,
    workers: usize,
}

impl PoolInner {
    fn spawn(workers: usize) -> Arc<PoolInner> {
        let inner = Arc::new(PoolInner {
            slot: Mutex::new(WorkSlot {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            workers,
        });
        for w in 0..workers {
            let pool = Arc::clone(&inner);
            thread::Builder::new()
                .name(format!("sf-pool-{w}"))
                .spawn(move || worker_loop(&pool))
                .expect("spawn sf-pool worker");
        }
        inner
    }

    fn shutdown(&self) {
        let mut slot = self.slot.lock().expect("pool slot lock");
        slot.shutdown = true;
        self.work_cv.notify_all();
    }
}

fn worker_loop(pool: &PoolInner) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = pool.slot.lock().expect("pool slot lock");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    if let Some(job) = slot.job.clone() {
                        break job;
                    }
                }
                slot = pool.work_cv.wait(slot).expect("pool slot wait");
            }
        };
        run_chunks(pool, &job);
    }
}

/// Returns the live pool for `threads`, rebuilding the worker set if the
/// configured count changed since the last region.
fn current_pool(threads: usize) -> Arc<PoolInner> {
    let workers = threads - 1; // the caller participates
    let mut guard = registry().pool.lock().expect("pool registry lock");
    if let Some(pool) = guard.as_ref() {
        if pool.workers == workers {
            return Arc::clone(pool);
        }
        pool.shutdown();
    }
    let pool = PoolInner::spawn(workers);
    *guard = Some(Arc::clone(&pool));
    pool
}

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

/// Runs `body` over the item ranges of `0..n_items`, split across the
/// configured threads.
///
/// `cost_per_item` is the caller's estimate of scalar operations per item;
/// loops whose total estimated cost falls below [`SERIAL_THRESHOLD`] — and
/// all loops when the thread count is 1, or when called from inside another
/// parallel region — run inline as a single `body(0..n_items)` call.
///
/// `body` must treat the items of disjoint ranges as independent: it may be
/// invoked concurrently from several threads, each with a disjoint range.
/// Panics inside `body` are caught on the worker, and re-raised on the
/// caller after the loop completes.
pub fn parallel_for<F>(n_items: usize, cost_per_item: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n_items == 0 {
        return;
    }
    let threads = num_threads();
    if n_items.saturating_mul(cost_per_item.max(1)) < SERIAL_THRESHOLD {
        body(0..n_items);
        return;
    }
    if threads <= 1 {
        // The loop is big enough to dispatch but the pool is one thread
        // wide: run inline, yet still record the region so traces taken at
        // different `--threads` settings show the same parallel regions
        // (with `threads` telling them apart).
        let _region_span = sf_trace::span("pool", "parallel_for")
            .arg("items", n_items as f64)
            .arg("threads", 1.0);
        body(0..n_items);
        return;
    }
    let reg = registry();
    // A held run_lock means we are inside another parallel region (possibly
    // on this very thread) — run inline rather than deadlock or queue.
    let Ok(_region) = reg.run_lock.try_lock() else {
        body(0..n_items);
        return;
    };
    // Region span: covers publish + participation + completion wait. Only
    // above-threshold loops are recorded; small inline loops stay span-free
    // (and overhead-free).
    let _region_span = sf_trace::span("pool", "parallel_for")
        .arg("items", n_items as f64)
        .arg("threads", threads as f64);
    let pool = current_pool(threads);

    let target_chunks = (threads * CHUNKS_PER_THREAD).min(n_items).max(1);
    let chunk = n_items.div_ceil(target_chunks);
    let n_chunks = n_items.div_ceil(chunk);

    let body_ref: &(dyn Fn(Range<usize>) + Sync) = &body;
    // SAFETY: lifetime erasure only; the pointer is dereferenced exclusively
    // while this frame is blocked in the completion wait below.
    let body_ptr = unsafe {
        std::mem::transmute::<
            &(dyn Fn(Range<usize>) + Sync),
            &'static (dyn Fn(Range<usize>) + Sync),
        >(body_ref) as *const _
    };
    let job: Job = Arc::new(JobInner {
        body: body_ptr,
        n_items,
        chunk,
        n_chunks,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(n_chunks),
        panicked: AtomicBool::new(false),
    });

    {
        let mut slot = pool.slot.lock().expect("pool slot lock");
        slot.epoch = slot.epoch.wrapping_add(1);
        slot.job = Some(Arc::clone(&job));
        pool.work_cv.notify_all();
    }

    // The caller is a full participant.
    run_chunks(&pool, &job);

    // Wait for workers to drain the chunks we did not claim. The timeout is
    // a belt-and-suspenders against the (checked-again-under-lock) race
    // between the last decrement and the notify.
    while job.pending.load(Ordering::Acquire) != 0 {
        let guard = pool.done.lock().expect("done lock");
        if job.pending.load(Ordering::Acquire) == 0 {
            break;
        }
        let _ = pool
            .done_cv
            .wait_timeout(guard, Duration::from_millis(1))
            .expect("done wait");
    }

    {
        let mut slot = pool.slot.lock().expect("pool slot lock");
        if slot
            .job
            .as_ref()
            .is_some_and(|current| Arc::ptr_eq(current, &job))
        {
            slot.job = None;
        }
    }

    if job.panicked.load(Ordering::Relaxed) {
        panic!("sf-tensor: a parallel kernel task panicked");
    }
}

// ---------------------------------------------------------------------------
// Disjoint-write helper
// ---------------------------------------------------------------------------

/// A `Send + Sync` raw pointer to an `f32` buffer, for kernels whose tasks
/// write *disjoint* regions of one output allocation.
///
/// The borrow checker cannot see that row-partitioned writes never alias,
/// so kernels capture the output as a `SendPtr` and carve per-task slices
/// out of it with [`SendPtr::slice_mut`].
#[derive(Clone, Copy)]
pub struct SendPtr(*mut f32);

// SAFETY: the pointer is only used for writes to ranges the caller
// guarantees are disjoint across concurrently-running tasks.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Wraps a mutable buffer. The caller must keep the buffer alive (and
    /// not otherwise access it) for as long as tasks may write through the
    /// returned pointer.
    pub fn new(buf: &mut [f32]) -> Self {
        SendPtr(buf.as_mut_ptr())
    }

    /// Reborrows `len` elements starting at `start`.
    ///
    /// # Safety
    ///
    /// `start..start + len` must lie inside the wrapped buffer and must not
    /// overlap any range concurrently reborrowed through this pointer.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// The thread-count knob is global; serialize the tests that turn it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn covers_every_item_exactly_once() {
        let _g = test_lock();
        set_num_threads(4);
        let n = 10_000;
        let mut hits = vec![0f32; n];
        let ptr = SendPtr::new(&mut hits);
        parallel_for(n, SERIAL_THRESHOLD, |range| {
            for i in range {
                // SAFETY: ranges from parallel_for are disjoint.
                unsafe { ptr.slice_mut(i, 1)[0] += 1.0 };
            }
        });
        assert!(hits.iter().all(|&h| h == 1.0));
    }

    #[test]
    fn small_loops_run_inline() {
        let _g = test_lock();
        set_num_threads(4);
        let calls = AtomicU64::new(0);
        parallel_for(8, 1, |range| {
            assert_eq!(range, 0..8);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_regions_fall_back_to_serial() {
        let _g = test_lock();
        set_num_threads(4);
        let total = AtomicU64::new(0);
        parallel_for(64, SERIAL_THRESHOLD, |outer| {
            for _ in outer {
                parallel_for(32, SERIAL_THRESHOLD, |inner| {
                    total.fetch_add(inner.len() as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 * 32);
    }

    #[test]
    fn set_num_threads_clamps_to_one() {
        let _g = test_lock();
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
    }

    #[test]
    fn dispatched_regions_emit_pool_spans() {
        let _g = test_lock();
        set_num_threads(4);
        sf_trace::reset();
        sf_trace::enable();
        parallel_for(1 << 10, 1 << 10, |range| {
            // Touch the range so the loop is not optimized away.
            std::hint::black_box(range.len());
        });
        sf_trace::disable();
        let trace = sf_trace::take();
        // Other tests may run concurrently and emit their own pool spans;
        // key on this region's unique item count.
        let region = trace
            .spans("pool")
            .find(|e| e.name == "parallel_for" && e.arg("items") == Some(1024.0))
            .expect("dispatched region must be traced");
        assert_eq!(region.arg("threads"), Some(4.0));
        let tasks: Vec<_> = trace.spans("pool").filter(|e| e.name == "tasks").collect();
        assert!(!tasks.is_empty(), "at least one participant claims chunks");
        let total_chunks: f64 = tasks.iter().filter_map(|e| e.arg("chunks")).sum();
        assert!(total_chunks >= 1.0);
    }

    #[test]
    fn inline_loops_emit_no_spans() {
        let _g = test_lock();
        set_num_threads(4);
        sf_trace::reset();
        sf_trace::enable();
        parallel_for(9, 1, |_| {}); // below SERIAL_THRESHOLD: runs inline
        sf_trace::disable();
        assert!(
            !sf_trace::take()
                .spans("pool")
                .any(|e| e.name == "parallel_for" && e.arg("items") == Some(9.0)),
            "inline loop must not be traced"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let _g = test_lock();
        set_num_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(1024, SERIAL_THRESHOLD, |range| {
                if range.start == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        parallel_for(1024, SERIAL_THRESHOLD, |_| {});
    }
}
