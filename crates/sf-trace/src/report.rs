//! Per-step phase breakdown — the runtime analogue of the paper's Table 1.
//!
//! The trainer wraps every optimizer step in a `step`-category umbrella
//! span; the stack nests phase spans (`data_wait`, `forward`, `backward`,
//! `optimizer`, `checkpoint`, `eval`) inside it. [`PhaseReport`] attributes
//! each step's wall time to those buckets by **interval union**: spans of
//! the same phase that nest or overlap (e.g. the trainer's wait wrapper
//! around the loader's own `data_wait` span) are not double-counted, and
//! only events on the step's own thread count — worker-side `loader` spans
//! live on other lanes and are reported separately by the viewer.
//!
//! `kernel`-category spans (the fused attention family) are folded into
//! the pass they run in by name — a `_bwd` suffix means `backward`,
//! anything else `forward` — instead of being dumped into "other".

use crate::{Event, EventKind, Trace, PHASE_CATS};

/// Number of recognized phases (see [`PHASE_CATS`]).
pub const N_PHASES: usize = PHASE_CATS.len();

/// One step's wall time split into phases.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPhases {
    /// Step number (from the span's `step` argument, else its ordinal).
    pub step: u64,
    /// Step span start, microseconds since trace epoch.
    pub start_us: u64,
    /// Step span wall time, microseconds.
    pub total_us: u64,
    /// Time attributed to each of [`PHASE_CATS`], microseconds.
    pub phase_us: [u64; N_PHASES],
}

impl StepPhases {
    /// Wall time not covered by any recognized phase.
    pub fn other_us(&self) -> u64 {
        self.total_us
            .saturating_sub(self.phase_us.iter().sum::<u64>())
    }
}

/// Phase attribution for a whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseReport {
    /// Per-step breakdowns, in step order.
    pub steps: Vec<StepPhases>,
    /// Phase time recorded *outside* any step span (e.g. a final
    /// evaluation pass or a checkpoint between steps), microseconds.
    pub out_of_step_us: [u64; N_PHASES],
    /// End-to-end wall time covered by the trace, microseconds.
    pub wall_us: u64,
}

/// Phase bucket a `kernel`-category span belongs to. Backward kernels
/// carry a `_bwd` name suffix (`attention_fused_bwd`); everything else
/// (`flash_attention`, `attention_fused`, ...) runs in the forward pass.
/// Without this mapping, fused-kernel time called outside a phase wrapper
/// would land in the table's "other" column.
fn kernel_phase(name: &str) -> &'static str {
    if name.ends_with("_bwd") {
        "backward"
    } else {
        "forward"
    }
}

/// Whether `e` counts toward phase `cat`: either directly by category, or
/// as a `kernel` span whose name maps to that phase.
fn matches_phase(e: &Event, cat: &str) -> bool {
    e.cat == cat || (e.cat == "kernel" && kernel_phase(&e.name) == cat)
}

/// Sum of interval lengths of the union of `intervals`, clipped to
/// `[lo, hi]`.
fn union_within(intervals: &mut [(u64, u64)], lo: u64, hi: u64) -> u64 {
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = lo;
    for &(s, e) in intervals.iter() {
        let s = s.max(lo).max(cursor);
        let e = e.min(hi);
        if e > s {
            covered += e - s;
            cursor = e;
        }
    }
    covered
}

impl PhaseReport {
    /// Builds the report from a trace. Steps are `step`-category complete
    /// spans on the real process (`pid` 0).
    pub fn from_trace(trace: &Trace) -> PhaseReport {
        let mut steps = Vec::new();
        let step_spans: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.pid == 0 && e.cat == "step" && matches!(e.kind, EventKind::Complete { .. }))
            .collect();
        for (ordinal, step_ev) in step_spans.iter().enumerate() {
            let (lo, hi) = (step_ev.ts_us, step_ev.end_us());
            let mut phase_us = [0u64; N_PHASES];
            for (i, cat) in PHASE_CATS.iter().enumerate() {
                let mut intervals: Vec<(u64, u64)> = trace
                    .events
                    .iter()
                    .filter(|e| {
                        e.pid == 0
                            && e.tid == step_ev.tid
                            && matches_phase(e, cat)
                            && matches!(e.kind, EventKind::Complete { .. })
                            && e.ts_us < hi
                            && e.end_us() > lo
                    })
                    .map(|e| (e.ts_us, e.end_us()))
                    .collect();
                phase_us[i] = union_within(&mut intervals, lo, hi);
            }
            steps.push(StepPhases {
                step: step_ev
                    .arg("step")
                    .map(|v| v as u64)
                    .unwrap_or(ordinal as u64 + 1),
                start_us: lo,
                total_us: hi - lo,
                phase_us,
            });
        }
        // Phase time outside every step window (same-lane overlap with any
        // step is subtracted per event; union across events is not needed
        // at the coarse out-of-step granularity).
        let mut out_of_step_us = [0u64; N_PHASES];
        for (i, cat) in PHASE_CATS.iter().enumerate() {
            for e in trace.events.iter().filter(|e| {
                e.pid == 0 && matches_phase(e, cat) && matches!(e.kind, EventKind::Complete { .. })
            }) {
                let (s, ev_end) = (e.ts_us, e.end_us());
                let inside: u64 = step_spans
                    .iter()
                    .filter(|st| st.tid == e.tid)
                    .map(|st| {
                        let lo = s.max(st.ts_us);
                        let hi = ev_end.min(st.end_us());
                        hi.saturating_sub(lo)
                    })
                    .sum();
                out_of_step_us[i] += (ev_end - s).saturating_sub(inside.min(ev_end - s));
            }
        }
        let wall_us = match (
            trace.events.iter().map(|e| e.ts_us).min(),
            trace.events.iter().map(|e| e.end_us()).max(),
        ) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0,
        };
        PhaseReport {
            steps,
            out_of_step_us,
            wall_us,
        }
    }

    /// Total step wall time, microseconds.
    pub fn total_step_us(&self) -> u64 {
        self.steps.iter().map(|s| s.total_us).sum()
    }

    /// Total time in phase `cat` across all steps, microseconds.
    pub fn phase_total_us(&self, cat: &str) -> u64 {
        let Some(i) = PHASE_CATS.iter().position(|c| *c == cat) else {
            return 0;
        };
        self.steps.iter().map(|s| s.phase_us[i]).sum()
    }

    /// Fraction of total step time spent in phase `cat` (0 when no steps).
    pub fn phase_share(&self, cat: &str) -> f64 {
        let total = self.total_step_us();
        if total == 0 {
            return 0.0;
        }
        self.phase_total_us(cat) as f64 / total as f64
    }

    /// Fraction of step time the consumer spent waiting for data — the
    /// number the paper's non-blocking pipeline drives toward zero.
    pub fn data_wait_share(&self) -> f64 {
        self.phase_share("data_wait")
    }

    /// Renders the per-step table (times in milliseconds).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let ms = |us: u64| us as f64 / 1e3;
        let mut out = String::new();
        let _ = writeln!(out, "per-step phase breakdown (ms):");
        let _ = write!(out, "{:>6} {:>10}", "step", "total");
        for cat in PHASE_CATS {
            let _ = write!(out, " {cat:>10}");
        }
        let _ = writeln!(out, " {:>10}", "other");
        for s in &self.steps {
            let _ = write!(out, "{:>6} {:>10.2}", s.step, ms(s.total_us));
            for us in s.phase_us {
                let _ = write!(out, " {:>10.2}", ms(us));
            }
            let _ = writeln!(out, " {:>10.2}", ms(s.other_us()));
        }
        let total = self.total_step_us();
        let _ = write!(out, "{:>6} {:>10.2}", "TOTAL", ms(total));
        let mut phase_sum = 0u64;
        for cat in PHASE_CATS {
            let t = self.phase_total_us(cat);
            phase_sum += t;
            let _ = write!(out, " {:>10.2}", ms(t));
        }
        let _ = writeln!(out, " {:>10.2}", ms(total.saturating_sub(phase_sum)));
        let _ = write!(out, "{:>6} {:>10}", "share", "");
        for cat in PHASE_CATS {
            let _ = write!(out, " {:>9.1}%", self.phase_share(cat) * 100.0);
        }
        let other_share = if total == 0 {
            0.0
        } else {
            total.saturating_sub(phase_sum) as f64 / total as f64
        };
        let _ = writeln!(out, " {:>9.1}%", other_share * 100.0);
        if self.out_of_step_us.iter().any(|&v| v > 0) {
            let _ = write!(out, "outside steps (ms):");
            for (i, cat) in PHASE_CATS.iter().enumerate() {
                if self.out_of_step_us[i] > 0 {
                    let _ = write!(out, "  {cat} {:.2}", ms(self.out_of_step_us[i]));
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl std::fmt::Display for PhaseReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;
    use std::borrow::Cow;

    fn span(cat: &'static str, ts: u64, dur: u64, tid: u32) -> Event {
        Event {
            name: Cow::Borrowed(cat),
            cat: Cow::Borrowed(cat),
            kind: EventKind::Complete { dur_us: dur },
            ts_us: ts,
            pid: 0,
            tid,
            args: vec![],
        }
    }

    fn kernel_span(name: &'static str, ts: u64, dur: u64, tid: u32) -> Event {
        Event {
            name: Cow::Borrowed(name),
            cat: Cow::Borrowed("kernel"),
            kind: EventKind::Complete { dur_us: dur },
            ts_us: ts,
            pid: 0,
            tid,
            args: vec![],
        }
    }

    #[test]
    fn attributes_phases_within_step_window() {
        let t = Trace {
            events: vec![
                span("step", 0, 100, 1),
                span("data_wait", 0, 10, 1),
                span("forward", 10, 40, 1),
                span("backward", 50, 30, 1),
                span("optimizer", 80, 15, 1),
            ],
            dropped: 0,
        };
        let r = PhaseReport::from_trace(&t);
        assert_eq!(r.steps.len(), 1);
        let s = &r.steps[0];
        assert_eq!(s.total_us, 100);
        assert_eq!(s.phase_us, [10, 40, 30, 15, 0, 0]);
        assert_eq!(s.other_us(), 5);
    }

    #[test]
    fn nested_same_phase_spans_are_not_double_counted() {
        // Trainer-level data_wait wrapping the loader's own data_wait.
        let t = Trace {
            events: vec![
                span("step", 0, 100, 1),
                span("data_wait", 0, 50, 1),
                span("data_wait", 5, 40, 1),
            ],
            dropped: 0,
        };
        let r = PhaseReport::from_trace(&t);
        assert_eq!(r.steps[0].phase_us[0], 50);
    }

    #[test]
    fn other_threads_do_not_pollute_step_phases() {
        let t = Trace {
            events: vec![
                span("step", 0, 100, 1),
                span("forward", 0, 100, 2), // another lane entirely
            ],
            dropped: 0,
        };
        let r = PhaseReport::from_trace(&t);
        assert_eq!(r.steps[0].phase_us[1], 0);
    }

    #[test]
    fn kernel_spans_attribute_to_forward_and_backward() {
        // Fused attention kernels outside a phase wrapper must land in
        // forward/backward by name, not in "other".
        let t = Trace {
            events: vec![
                span("step", 0, 100, 1),
                kernel_span("attention_fused", 0, 30, 1),
                kernel_span("attention_fused_bwd", 40, 20, 1),
            ],
            dropped: 0,
        };
        let r = PhaseReport::from_trace(&t);
        let s = &r.steps[0];
        assert_eq!(s.phase_us[1], 30, "forward");
        assert_eq!(s.phase_us[2], 20, "backward");
        assert_eq!(s.other_us(), 50);
    }

    #[test]
    fn kernel_spans_nested_in_phase_wrappers_do_not_double_count() {
        // The usual case: attention_fused runs inside the trainer's own
        // forward span. Interval union keeps the forward column at the
        // wrapper's width.
        let t = Trace {
            events: vec![
                span("step", 0, 100, 1),
                span("forward", 0, 60, 1),
                kernel_span("flash_attention", 10, 20, 1),
            ],
            dropped: 0,
        };
        let r = PhaseReport::from_trace(&t);
        assert_eq!(r.steps[0].phase_us[1], 60);
    }

    #[test]
    fn out_of_step_time_is_reported() {
        let t = Trace {
            events: vec![span("step", 0, 100, 1), span("eval", 150, 50, 1)],
            dropped: 0,
        };
        let r = PhaseReport::from_trace(&t);
        assert_eq!(r.steps[0].phase_us[5], 0);
        assert_eq!(r.out_of_step_us[5], 50);
        assert_eq!(r.wall_us, 200);
    }

    #[test]
    fn shares_and_table_render() {
        let t = Trace {
            events: vec![
                span("step", 0, 100, 1),
                span("data_wait", 0, 25, 1),
                span("step", 100, 100, 1),
                span("data_wait", 100, 25, 1),
            ],
            dropped: 0,
        };
        let r = PhaseReport::from_trace(&t);
        assert!((r.data_wait_share() - 0.25).abs() < 1e-9);
        let table = r.to_table();
        assert!(table.contains("TOTAL"));
        assert!(table.contains("data_wait"));
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let r = PhaseReport::from_trace(&Trace::default());
        assert!(r.steps.is_empty());
        assert_eq!(r.data_wait_share(), 0.0);
        assert_eq!(r.total_step_us(), 0);
    }
}
