//! Golden end-to-end regression test: a fixed-seed tiny training run whose
//! loss / lDDT-Cα trajectory is pinned to a committed fixture.
//!
//! The run is deterministic by construction: one loader worker (so the
//! non-blocking pipeline delivers in sampler order), a fixed seed, and the
//! sf-tensor kernels' thread-count-invariant reductions (every kernel
//! splits work identically regardless of how many threads execute it).
//! That last property is what lets ONE fixture pin the trajectory at both
//! 1 and 4 compute threads — any data race or reduction-order change in the
//! parallel backend shows up here as a trajectory mismatch.
//!
//! Fixture provenance — regenerate after an *intentional* numeric change
//! (kernel rewrites, fusion changes, optimizer tweaks) with exactly:
//!
//! ```text
//! SF_REGEN_GOLDEN=1 cargo test -q -p scalefold --test golden_train
//! ```
//!
//! The regen writes `tests/fixtures/golden_train.json` from a 1-thread run
//! of [`golden_config`] (TrainerConfig::tiny, 1 evoformer block, 0 extra
//! blocks, loader_workers=1, seed=7, fused kernels on); thread count does
//! not matter for the values — see above — but 1 keeps regens boring.
//! Current fixture: regenerated after the fused attention-softmax kernel
//! family switched the training path to the polynomial `vexp`.

use scalefold::{Trainer, TrainerConfig};
use sf_trace::json::{self, Value};
use std::path::Path;

const GOLDEN_STEPS: u64 = 8;
/// Absolute slack on loss (values are O(10-60)) and lDDT (values in [0,1]).
/// Kernels are bit-identical across thread counts, so the only drift this
/// must absorb is the fixture's f32→decimal→f32 round trip — which is
/// exact — plus headroom against libm differences across toolchains.
const LOSS_TOL: f32 = 2e-3;
const LDDT_TOL: f32 = 1e-4;

fn fixture_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden_train.json")
}

fn golden_config() -> TrainerConfig {
    let mut cfg = TrainerConfig::tiny();
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    // One worker makes the non-blocking pipeline deliver in sampler order
    // (multi-worker delivery order is timing-dependent by design).
    cfg.loader_workers = 1;
    cfg
}

fn run_trajectory() -> Vec<(u64, f32, f32)> {
    let mut trainer = Trainer::new(golden_config());
    trainer
        .train(GOLDEN_STEPS)
        .into_iter()
        .map(|r| (r.step, r.loss, r.lddt))
        .collect()
}

fn trajectory_to_json(traj: &[(u64, f32, f32)]) -> String {
    let steps: Vec<Value> = traj
        .iter()
        .map(|&(step, loss, lddt)| {
            let mut o = std::collections::BTreeMap::new();
            o.insert("step".to_string(), Value::Num(step as f64));
            o.insert("loss".to_string(), Value::Num(loss as f64));
            o.insert("lddt".to_string(), Value::Num(lddt as f64));
            Value::Obj(o)
        })
        .collect();
    let mut root = std::collections::BTreeMap::new();
    root.insert(
        "config".to_string(),
        Value::Str("tiny model, 1 evoformer block, loader_workers=1, seed=7".to_string()),
    );
    root.insert("steps".to_string(), Value::Arr(steps));
    let mut out = Value::Obj(root).to_json();
    out.push('\n');
    out
}

fn load_fixture() -> Vec<(u64, f32, f32)> {
    let path = fixture_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden fixture {}: {e}", path.display()));
    let root = json::parse(&text).expect("golden fixture must be valid JSON");
    let steps = root
        .get("steps")
        .and_then(Value::as_arr)
        .expect("fixture must have a 'steps' array");
    steps
        .iter()
        .map(|s| {
            let num = |k: &str| {
                s.get(k)
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| panic!("fixture step missing numeric '{k}'"))
            };
            (num("step") as u64, num("loss") as f32, num("lddt") as f32)
        })
        .collect()
}

fn assert_matches_fixture(traj: &[(u64, f32, f32)], golden: &[(u64, f32, f32)], label: &str) {
    assert_eq!(
        traj.len(),
        golden.len(),
        "[{label}] trajectory length diverged from fixture"
    );
    for (got, want) in traj.iter().zip(golden) {
        assert_eq!(got.0, want.0, "[{label}] step numbering diverged");
        assert!(
            (got.1 - want.1).abs() <= LOSS_TOL,
            "[{label}] step {}: loss {} vs golden {} (tol {LOSS_TOL})",
            got.0,
            got.1,
            want.1
        );
        assert!(
            (got.2 - want.2).abs() <= LDDT_TOL,
            "[{label}] step {}: lDDT {} vs golden {} (tol {LDDT_TOL})",
            got.0,
            got.2,
            want.2
        );
    }
}

/// The golden run, at 1 and then 4 compute threads inside a single test —
/// the global thread-count knob must not be raced by a concurrent test.
#[test]
fn trajectory_matches_committed_fixture_at_1_and_4_threads() {
    if std::env::var_os("SF_REGEN_GOLDEN").is_some() {
        sf_tensor::pool::set_num_threads(1);
        let traj = run_trajectory();
        std::fs::write(fixture_path(), trajectory_to_json(&traj))
            .expect("write regenerated golden fixture");
        eprintln!("regenerated {}", fixture_path().display());
        return;
    }
    let golden = load_fixture();
    for threads in [1usize, 4] {
        sf_tensor::pool::set_num_threads(threads);
        let traj = run_trajectory();
        assert_matches_fixture(&traj, &golden, &format!("{threads} thread(s)"));
    }
}

/// Two runs of the same config are bit-identical — the precondition that
/// makes the fixture meaningful (and a canary for hidden global state).
#[test]
fn golden_run_is_reproducible_within_process() {
    let a = run_trajectory();
    let b = run_trajectory();
    assert_eq!(a, b, "same config + seed must reproduce exactly");
}
