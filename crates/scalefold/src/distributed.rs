//! A *functional* data-parallel trainer: real replicas, real gradient
//! all-reduce (the ring algorithm from `sf_cluster::collective`), real
//! bucketed clipping — the algorithms the cluster simulator prices, run
//! for correctness at CPU scale.
//!
//! The key invariants this module demonstrates (and tests):
//!
//! - replicas that start identical and all-reduce their gradients stay
//!   **bit-comparable** forever (the fundamental DP contract);
//! - DP-k training on k batches takes the same parameter step as a single
//!   trainer fed the averaged gradient of those k batches;
//! - the gradient traffic all-reduced per step is exactly what
//!   `ClusterSim` prices (`param_elements × bytes`);
//! - DP composes with Dynamic Axial Parallelism into a DP×DAP grid
//!   (ScaleFold §3.3): each replica shards its own sample's activations
//!   across `cfg.dap` axial ranks, while gradients synchronize across the
//!   data-parallel axis exactly as before.

use crate::dap::{DapGroup, DapStats};
use crate::trainer::TrainerConfig;
use sf_autograd::{Graph, ParamStore};
use sf_cluster::collective::all_reduce_tensors;
use sf_data::featurize::featurize;
use sf_data::SyntheticDataset;
use sf_faults::{FaultInjector, FaultPlan};
use sf_model::{AlphaFold, AxialCollectives, FeatureBatch, ModelConfig};
use sf_optim::{FusedAdamSwa, GradBuckets, Grads};
use sf_tensor::Tensor;

/// Per-step report of a data-parallel training step.
#[derive(Debug, Clone, PartialEq)]
pub struct DpStepReport {
    /// Step index.
    pub step: u64,
    /// Mean loss across replicas.
    pub mean_loss: f32,
    /// Global gradient norm after averaging (pre-clip; NaN when the step
    /// was skipped).
    pub grad_norm: f32,
    /// Elements communicated by the ring all-reduce this step.
    pub elements_all_reduced: usize,
    /// Elements moved by DAP collectives this step, summed over replicas
    /// (0 when `cfg.dap <= 1`).
    pub elements_dap: usize,
    /// Maximum parameter divergence across replicas after the step
    /// (should be ~0: the DP contract).
    pub max_replica_divergence: f32,
    /// True if the optimizer update was skipped because the averaged
    /// gradients' global norm (or the loss) was non-finite. All replicas
    /// skip together — the decision is made on the identical averaged
    /// gradients — so synchrony is preserved.
    pub skipped: bool,
}

/// A `k`-replica data-parallel trainer sharing one model architecture.
pub struct DataParallelTrainer {
    cfg: TrainerConfig,
    model: AlphaFold,
    /// One parameter store per replica (kept deliberately separate so the
    /// divergence invariant is *measured*, not assumed).
    stores: Vec<ParamStore>,
    optimizers: Vec<FusedAdamSwa>,
    step: u64,
    /// Shared DAP executor: replicas run sequentially on a CPU, so one
    /// group serves the whole grid and accumulates total traffic.
    dap_group: Option<DapGroup>,
    dap_comm: DapStats,
    injector: FaultInjector,
}

impl DataParallelTrainer {
    /// Creates `ranks` replicas. Parameters initialize lazily on the first
    /// step (deterministically by name, so all replicas start identical).
    /// With `cfg.dap > 1` this is a DP×DAP grid of `ranks × cfg.dap`
    /// simulated devices.
    ///
    /// # Panics
    ///
    /// Panics if `ranks == 0`, or if `cfg.dap > 1` and the model's axial
    /// dimensions do not divide evenly across the DAP ranks.
    pub fn new(cfg: TrainerConfig, ranks: usize) -> Self {
        DataParallelTrainer::with_faults(cfg, ranks, FaultPlan::none())
    }

    /// Like [`DataParallelTrainer::new`], with a fault schedule:
    /// NaN-gradient faults fire on replica 0 before the all-reduce, so the
    /// poison propagates to every replica's averaged gradients — the
    /// worst-case large-scale failure the skip guard must absorb.
    pub fn with_faults(cfg: TrainerConfig, ranks: usize, plan: FaultPlan) -> Self {
        assert!(ranks > 0, "need at least one replica");
        let dap_group = if cfg.dap > 1 {
            if let Err(msg) = DapGroup::validate_config(&cfg.model, cfg.dap) {
                panic!("{msg}");
            }
            Some(DapGroup::new(cfg.dap))
        } else {
            None
        };
        let model = AlphaFold::new(cfg.model.clone());
        let optimizers = (0..ranks)
            .map(|_| FusedAdamSwa::new(cfg.adam, cfg.swa_decay))
            .collect();
        DataParallelTrainer {
            model,
            stores: vec![ParamStore::new(); ranks],
            optimizers,
            step: 0,
            dap_group,
            dap_comm: DapStats::default(),
            injector: FaultInjector::new(plan),
            cfg,
        }
    }

    /// Number of replicas.
    pub fn ranks(&self) -> usize {
        self.stores.len()
    }

    /// Cumulative DAP communication over all steps and replicas (zero when
    /// `cfg.dap <= 1`).
    pub fn dap_comm(&self) -> DapStats {
        self.dap_comm
    }

    /// A replica's parameter store.
    pub fn store(&self, rank: usize) -> &ParamStore {
        &self.stores[rank]
    }

    /// One synchronous data-parallel step: each replica computes gradients
    /// on its own batch, gradients are ring-all-reduced (mean), bucketed
    /// clipping applies to the averaged gradients, and every replica takes
    /// the same optimizer step.
    ///
    /// # Panics
    ///
    /// Panics if `batches.len() != ranks` or a batch mismatches the model
    /// configuration.
    pub fn train_step(&mut self, batches: &[FeatureBatch]) -> DpStepReport {
        assert_eq!(batches.len(), self.ranks(), "one batch per replica");
        // Per-replica forward/backward; each replica shards its own sample
        // across the DAP axis (the replicas form the DP axis of the grid).
        let ranks = self.ranks();
        let mut per_rank_grads: Vec<Grads> = Vec::with_capacity(ranks);
        let mut mean_loss = 0.0f32;
        let model = &self.model;
        let dap = self
            .dap_group
            .as_ref()
            .map(|group| group as &dyn AxialCollectives);
        for (store, batch) in self.stores.iter_mut().zip(batches.iter()) {
            let mut g = Graph::new();
            let out = model
                .forward_dap(&mut g, store, batch, dap)
                .expect("forward on validated batch");
            g.backward(out.loss).expect("scalar loss");
            mean_loss += out.loss_breakdown.total / ranks as f32;
            per_rank_grads.push(g.grads_by_name().expect("bindings"));
        }
        let elements_dap = if let Some(group) = &self.dap_group {
            let step_comm = group.take_stats();
            self.dap_comm.all_gather_elements += step_comm.all_gather_elements;
            self.dap_comm.all_to_all_elements += step_comm.all_to_all_elements;
            self.dap_comm.gathers += step_comm.gathers;
            self.dap_comm.switches += step_comm.switches;
            step_comm.total_elements()
        } else {
            0
        };
        if self.injector.poison_grads_at(self.step) {
            if let Some(grad) = per_rank_grads[0].values_mut().next() {
                let mut data = grad.data().to_vec();
                if let Some(first) = data.first_mut() {
                    *first = f32::NAN;
                }
                *grad = Tensor::from_vec(data, grad.dims()).expect("same shape");
            }
        }

        // Ring all-reduce every gradient tensor across replicas.
        let names: Vec<String> = per_rank_grads[0].keys().cloned().collect();
        let mut elements = 0usize;
        for name in &names {
            let mut ranks_tensors: Vec<Tensor> = per_rank_grads
                .iter()
                .map(|g| g[name].clone())
                .collect();
            let stats = all_reduce_tensors(&mut ranks_tensors);
            elements += stats.elements_sent;
            for (g, t) in per_rank_grads.iter_mut().zip(ranks_tensors) {
                g.insert(name.clone(), t);
            }
        }

        // Bucketed clipping on the (identical) averaged gradients; unpack
        // restores the original tensor shapes. A non-finite global norm
        // (one replica's poison spreads to every replica through the
        // all-reduce) is surfaced by `clip` with the gradients untouched.
        let mut buckets = GradBuckets::pack(&per_rank_grads[0], 25 * 1024 * 1024);
        let grad_norm = buckets.clip(self.cfg.clip_norm);
        let finite = mean_loss.is_finite() && grad_norm.is_finite();
        if finite {
            let clipped = buckets.unpack();
            for grads in per_rank_grads.iter_mut() {
                for (name, t) in &clipped {
                    grads.insert(name.clone(), t.clone());
                }
            }

            // Identical optimizer step on every replica.
            let lr = self.cfg.schedule.lr_at(self.step);
            for ((store, opt), grads) in self
                .stores
                .iter_mut()
                .zip(self.optimizers.iter_mut())
                .zip(per_rank_grads.iter())
            {
                opt.step(store, grads, lr);
            }
        }
        self.step += 1;

        DpStepReport {
            step: self.step,
            mean_loss,
            grad_norm: if finite { grad_norm } else { f32::NAN },
            elements_all_reduced: elements,
            elements_dap,
            max_replica_divergence: self.max_divergence(),
            skipped: !finite,
        }
    }

    /// Trains `steps` steps on deterministic synthetic batches (replica `r`
    /// sees sample `step * ranks + r`).
    pub fn train(&mut self, steps: u64) -> Vec<DpStepReport> {
        let ds = SyntheticDataset::new(self.cfg.seed ^ 0xD0, 64);
        let mut out = Vec::with_capacity(steps as usize);
        for s in 0..steps {
            let batches: Vec<FeatureBatch> = (0..self.ranks())
                .map(|r| {
                    let idx = (s as usize * self.ranks() + r) % ds.len();
                    featurize(&ds.record(idx), &self.cfg.model, self.cfg.seed ^ idx as u64)
                })
                .collect();
            out.push(self.train_step(&batches));
        }
        out
    }

    /// Maximum absolute parameter difference between replica 0 and the
    /// others (the DP-synchrony invariant; ~0 up to f32 rounding).
    pub fn max_divergence(&self) -> f32 {
        let mut max = 0.0f32;
        let base = &self.stores[0];
        for other in &self.stores[1..] {
            for (name, t) in base.iter() {
                if let Some(o) = other.get(name) {
                    for (a, b) in t.data().iter().zip(o.data().iter()) {
                        max = max.max((a - b).abs());
                    }
                }
            }
        }
        max
    }
}

/// A ModelConfig small enough for multi-replica CPU tests.
pub fn dp_test_model() -> ModelConfig {
    let mut cfg = ModelConfig::tiny();
    cfg.evoformer_blocks = 1;
    cfg.extra_msa_blocks = 0;
    cfg.template_blocks = 0;
    cfg.structure_layers = 1;
    cfg.n_res = 8;
    cfg.n_seq = 3;
    cfg.n_extra_seq = 4;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp_cfg() -> TrainerConfig {
        let mut cfg = TrainerConfig::tiny();
        cfg.model = dp_test_model();
        cfg.schedule.warmup_steps = 2;
        cfg
    }

    #[test]
    fn replicas_stay_synchronized() {
        let mut dp = DataParallelTrainer::new(dp_cfg(), 3);
        let reports = dp.train(4);
        for r in &reports {
            assert!(
                r.max_replica_divergence < 1e-5,
                "step {}: divergence {}",
                r.step,
                r.max_replica_divergence
            );
            assert!(r.mean_loss.is_finite());
        }
    }

    #[test]
    fn all_reduce_traffic_matches_parameter_count() {
        let mut dp = DataParallelTrainer::new(dp_cfg(), 2);
        let reports = dp.train(1);
        let params: usize = dp.store(0).num_elements();
        // Ring with n=2 sends 2*(n-1)/n = 1x the elements per rank; summed
        // over ranks = params * 2 * (n-1) = params * 2.
        let expect = params * 2;
        let got = reports[0].elements_all_reduced;
        assert!(
            got.abs_diff(expect) <= 2 * dp.store(0).len(),
            "traffic {got} vs expected ~{expect}"
        );
    }

    #[test]
    fn dp2_matches_single_trainer_on_averaged_gradient() {
        // A DP-2 step equals a single-replica step taken on the mean of the
        // two batches' gradients — verified by comparing parameters after
        // one step against a manual average.
        let cfg = dp_cfg();
        let ds = SyntheticDataset::new(cfg.seed ^ 0xD0, 64);
        let b0 = featurize(&ds.record(0), &cfg.model, cfg.seed);
        let b1 = featurize(&ds.record(1), &cfg.model, cfg.seed ^ 1);

        let mut dp = DataParallelTrainer::new(cfg.clone(), 2);
        dp.train_step(&[b0.clone(), b1.clone()]);

        // Manual: one store, average the two gradient maps, same optimizer.
        let model = AlphaFold::new(cfg.model.clone());
        let mut store = ParamStore::new();
        let mut grads_sum: Option<Grads> = None;
        for batch in [&b0, &b1] {
            let mut g = Graph::new();
            let out = model.forward(&mut g, &mut store, batch).expect("fwd");
            g.backward(out.loss).expect("bwd");
            let grads = g.grads_by_name().expect("grads");
            grads_sum = Some(match grads_sum {
                None => grads,
                Some(mut acc) => {
                    for (name, t) in grads {
                        let merged = acc[&name].add(&t).expect("same shapes");
                        acc.insert(name, merged);
                    }
                    acc
                }
            });
        }
        let mut grads = grads_sum.expect("two batches");
        for t in grads.values_mut() {
            *t = t.mul_scalar(0.5);
        }
        let mut buckets = GradBuckets::pack(&grads, 25 * 1024 * 1024);
        buckets.clip(cfg.clip_norm);
        for (name, t) in buckets.unpack() {
            grads.insert(name, t);
        }
        let mut opt = FusedAdamSwa::new(cfg.adam, cfg.swa_decay);
        opt.step(&mut store, &grads, cfg.schedule.lr_at(0));

        for (name, manual) in store.iter() {
            let dp_param = dp.store(0).get(name).expect("same params");
            assert!(
                manual.allclose(dp_param, 1e-4),
                "parameter {name} differs between DP-2 and manual averaging"
            );
        }
    }

    #[test]
    fn single_rank_dp_equals_plain_trainer_shape() {
        let mut dp = DataParallelTrainer::new(dp_cfg(), 1);
        let reports = dp.train(2);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].elements_all_reduced, 0); // no comm at DP-1
        assert_eq!(reports[1].max_replica_divergence, 0.0);
        assert_eq!(reports[0].elements_dap, 0);
    }

    /// A DP-2 × DAP-2 grid trains like plain DP-2: the activation sharding
    /// is numerically transparent, replicas stay synchronized, and the DAP
    /// traffic is exactly `replicas × analytic volume` per step.
    #[test]
    fn dp_dap_grid_matches_plain_dp() {
        let mut cfg = dp_cfg();
        cfg.model.n_seq = 4; // divisible by the DAP ranks (dp_test_model uses 3)
        let mut plain = DataParallelTrainer::new(cfg.clone(), 2);
        let plain_reports = plain.train(2);

        cfg.dap = 2;
        let mut grid = DataParallelTrainer::new(cfg.clone(), 2);
        let grid_reports = grid.train(2);

        let per_step = crate::dap::analytic_comm_volume(&cfg.model, 2);
        for (p, g) in plain_reports.iter().zip(grid_reports.iter()) {
            assert!(
                (p.mean_loss - g.mean_loss).abs() <= 1e-4,
                "step {}: loss {} vs {}",
                p.step,
                p.mean_loss,
                g.mean_loss
            );
            assert!(g.max_replica_divergence < 1e-5);
            assert_eq!(g.elements_dap, 2 * per_step.total_elements());
            assert_eq!(p.elements_dap, 0);
        }
        let total = grid.dap_comm();
        assert_eq!(total.gathers, 2 * 2 * per_step.gathers);
        assert_eq!(total.switches, 2 * 2 * per_step.switches);
    }

    /// One replica's NaN gradient spreads to every replica through the
    /// all-reduce; the bucketed clip surfaces the non-finite norm and the
    /// whole grid skips the update together, leaving weights and synchrony
    /// intact.
    #[test]
    fn poisoned_gradient_skips_update_on_all_replicas() {
        let cfg = dp_cfg();
        let plan = FaultPlan::none().with_nan_grad(1);
        let mut dp = DataParallelTrainer::with_faults(cfg, 2, plan);
        let r0 = dp.train(1).pop().expect("one report");
        assert!(!r0.skipped);
        let before: Vec<(String, Tensor)> = dp
            .store(0)
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect();

        let r1 = dp.train(1).pop().expect("one report");
        assert!(r1.skipped, "poisoned step must skip");
        assert!(r1.grad_norm.is_nan());
        assert!(r1.max_replica_divergence < 1e-6);
        for (name, t) in &before {
            let after = dp.store(0).get(name).expect("param persists");
            assert_eq!(t.data(), after.data(), "{name} changed on a skipped step");
        }

        let r2 = dp.train(1).pop().expect("one report");
        assert!(!r2.skipped, "training resumes after the skip");
    }
}
