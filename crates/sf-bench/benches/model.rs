//! Whole-model benchmarks: the real tiny AlphaFold's forward and
//! forward+backward, with gradient checkpointing on and off (the real-cost
//! side of the ckpt trade-off the paper exploits under DAP).

use criterion::{criterion_group, criterion_main, Criterion};
use sf_autograd::{Graph, ParamStore};
use sf_model::{AlphaFold, FeatureBatch, ModelConfig};
use std::hint::black_box;

fn tiny() -> ModelConfig {
    let mut cfg = ModelConfig::tiny();
    cfg.evoformer_blocks = 1;
    cfg.extra_msa_blocks = 0;
    cfg.template_blocks = 0;
    cfg
}

fn bench_forward_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("alphafold_tiny");
    group.sample_size(10);
    let cfg = tiny();
    let batch = FeatureBatch::synthetic(&cfg, 1);
    // Warm the parameter store once so every iteration reuses weights.
    let mut store = ParamStore::new();
    {
        let model = AlphaFold::new(cfg.clone());
        let mut g = Graph::new();
        let _ = model.forward(&mut g, &mut store, &batch).expect("warmup");
    }

    group.bench_function("forward", |b| {
        let model = AlphaFold::new(cfg.clone());
        b.iter(|| {
            let mut g = Graph::new();
            black_box(model.forward(&mut g, &mut store, &batch).expect("fwd"))
        })
    });
    group.bench_function("forward_backward", |b| {
        let model = AlphaFold::new(cfg.clone());
        b.iter(|| {
            let mut g = Graph::new();
            let out = model.forward(&mut g, &mut store, &batch).expect("fwd");
            g.backward(out.loss).expect("bwd");
            black_box(g.grads_by_name().expect("grads").len())
        })
    });
    group.bench_function("forward_backward_checkpointed", |b| {
        let mut ck = cfg.clone();
        ck.gradient_checkpointing = true;
        let model = AlphaFold::new(ck);
        b.iter(|| {
            let mut g = Graph::new();
            let out = model.forward(&mut g, &mut store, &batch).expect("fwd");
            g.backward(out.loss).expect("bwd");
            black_box(g.activation_bytes())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forward_backward);
criterion_main!(benches);
