//! `scalefold` — command-line front end for the reproduction.
//!
//! ```text
//! scalefold train [STEPS]            real CPU training on the tiny model
//! scalefold simulate [DAP]           simulated cluster step time at DAP-n
//! scalefold memory [DAP]             per-rank memory footprint at DAP-n
//! scalefold ladder                   the Figure-8 optimization ladder
//! scalefold figures                  every table/figure reproduction
//! scalefold faults [STEPS]           fault-injection drill on real training
//! scalefold tradeoff [STEPS]         checkpoint-interval x failure-rate grid
//! scalefold bench-kernels            CPU kernel baseline -> BENCH_kernels.json
//! scalefold trace-report [PATH]      phase table from a trace (no PATH: A/B drill)
//! ```
//!
//! The global `--threads N` flag (anywhere on the command line) pins the
//! `sf-tensor` parallel CPU backend to `N` compute threads; without it the
//! backend honors `SF_THREADS`, then the machine's core count.
//!
//! The global `--trace PATH` flag enables the `sf-trace` runtime tracer
//! for whatever command runs and writes a Chrome `trace_event` JSON file
//! (loadable in `chrome://tracing` / Perfetto) on exit.
//!
//! The global `--no-fused` flag falls back from the fused
//! attention-softmax-gate kernel to the composed op chain, for A/B
//! comparison and debugging. `bench-kernels --no-fused` writes
//! `BENCH_kernels_nofused.json` so both reports can coexist.
//!
//! All I/O failures propagate to a nonzero exit code instead of panicking.

use scalefold::kernel_bench::{self, BenchScale};
use scalefold::{experiments, ladder_stages, LoaderKind, OptimizationSet, Trainer, TrainerConfig};
use sf_cluster::{ClusterConfig, ClusterSim, FailureModel, StragglerModel};
use sf_faults::{corrupt, FaultPlan};
use sf_model::ModelConfig;
use sf_opgraph::memory;
use sf_trace::report::PhaseReport;
use sf_trace::Trace;
use std::error::Error;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args = match extract_threads_flag(std::env::args().skip(1).collect()) {
        Ok(rest) => rest,
        Err(e) => {
            eprintln!("scalefold: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (args, trace_path) = match extract_trace_flag(args) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("scalefold: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (args, fused) = extract_no_fused_flag(args);
    let (args, dap) = match extract_dap_flag(args) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("scalefold: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let result = match cmd {
        "train" => parse_num(&args, 1, 20).and_then(|n| train(n, fused, dap)),
        "simulate" => parse_num(&args, 1, 8).and_then(|n| simulate(n as usize)),
        "memory" => parse_num(&args, 1, 8).and_then(|n| memory_report(n as usize)),
        "ladder" => ladder(),
        "figures" => figures(),
        "faults" => parse_num(&args, 1, 6).and_then(|n| fault_drill(n, fused, dap)),
        "tradeoff" => parse_num(&args, 1, 2000).and_then(tradeoff),
        "bench-kernels" => bench_kernels(fused),
        "trace-report" => trace_report(args.get(1).map(String::as_str), fused),
        "help" | "--help" | "-h" => help(),
        other => {
            let _ = help();
            eprintln!("\nscalefold: error: unknown command '{other}'");
            return ExitCode::FAILURE;
        }
    };
    let result = result.and_then(|()| match &trace_path {
        Some(path) => write_trace(path),
        None => Ok(()),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scalefold {cmd}: error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn Error>>;

/// Strips the global `--threads N` / `--threads=N` flag from `args`,
/// applying it to the compute pool; returns the remaining arguments.
fn extract_threads_flag(args: Vec<String>) -> Result<Vec<String>, Box<dyn Error>> {
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let value = if a == "--threads" {
            Some(it.next().ok_or("--threads expects a thread count")?)
        } else if let Some(v) = a.strip_prefix("--threads=") {
            Some(v.to_string())
        } else {
            rest.push(a);
            None
        };
        if let Some(v) = value {
            let n: usize = v
                .parse()
                .map_err(|_| format!("invalid thread count '{v}'"))?;
            if n == 0 {
                return Err("--threads expects a positive integer".into());
            }
            sf_tensor::pool::set_num_threads(n);
        }
    }
    Ok(rest)
}

/// Strips the global `--trace PATH` / `--trace=PATH` flag from `args`. A
/// trace path enables the `sf-trace` runtime tracer immediately and is
/// validated for writability up front, so a typo fails before — not after —
/// a long run.
fn extract_trace_flag(args: Vec<String>) -> Result<(Vec<String>, Option<PathBuf>), Box<dyn Error>> {
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let value = if a == "--trace" {
            Some(it.next().ok_or("--trace expects an output path")?)
        } else if let Some(v) = a.strip_prefix("--trace=") {
            Some(v.to_string())
        } else {
            rest.push(a);
            None
        };
        if let Some(v) = value {
            std::fs::File::create(&v)
                .map_err(|e| format!("cannot write trace file '{v}': {e}"))?;
            sf_trace::enable();
            path = Some(PathBuf::from(v));
        }
    }
    Ok((rest, path))
}

/// Strips the global `--dap N` / `--dap=N` flag from `args`; returns the
/// remaining arguments plus the Dynamic Axial Parallelism degree for the
/// real training commands (`1` = off, the default). Axial-dimension
/// divisibility is validated where the trainer config is known.
fn extract_dap_flag(args: Vec<String>) -> Result<(Vec<String>, usize), Box<dyn Error>> {
    let mut rest = Vec::with_capacity(args.len());
    let mut dap = 1usize;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let value = if a == "--dap" {
            Some(it.next().ok_or("--dap expects a rank count")?)
        } else if let Some(v) = a.strip_prefix("--dap=") {
            Some(v.to_string())
        } else {
            rest.push(a);
            None
        };
        if let Some(v) = value {
            let n: usize = v.parse().map_err(|_| format!("invalid DAP rank count '{v}'"))?;
            if n == 0 {
                return Err("--dap expects a positive integer".into());
            }
            dap = n;
        }
    }
    Ok((rest, dap))
}

/// Strips the global `--no-fused` flag from `args`; returns the remaining
/// arguments plus whether the fused attention-softmax-gate kernel stays
/// enabled (`true` = fused, the default).
fn extract_no_fused_flag(args: Vec<String>) -> (Vec<String>, bool) {
    let mut fused = true;
    let rest = args
        .into_iter()
        .filter(|a| {
            if a == "--no-fused" {
                fused = false;
                false
            } else {
                true
            }
        })
        .collect();
    (rest, fused)
}

/// Drains the global trace collector into `path` as Chrome `trace_event`
/// JSON and prints a one-line summary of what was captured.
fn write_trace(path: &Path) -> CliResult {
    let trace = sf_trace::take();
    if trace.dropped > 0 {
        eprintln!(
            "scalefold: warning: {} trace event(s) dropped (ring buffers full)",
            trace.dropped
        );
    }
    let events = trace.events.len();
    std::fs::write(path, trace.to_chrome_json())
        .map_err(|e| format!("cannot write trace file '{}': {e}", path.display()))?;
    println!(
        "wrote {events} trace event(s) to {} (load in chrome://tracing or ui.perfetto.dev)",
        path.display()
    );
    Ok(())
}

fn parse_num(args: &[String], idx: usize, default: u64) -> Result<u64, Box<dyn Error>> {
    match args.get(idx) {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| format!("invalid numeric argument '{s}'").into()),
    }
}

fn help() -> CliResult {
    println!("scalefold — a Rust reproduction of 'ScaleFold: Reducing AlphaFold");
    println!("Initial Training Time to 10 Hours' (DAC 2024)\n");
    println!("usage: scalefold <command> [arg]\n");
    println!("  train [STEPS=20]    real CPU training of the tiny AlphaFold");
    println!("  simulate [DAP=8]    simulated H100 cluster step time at DAP-n");
    println!("  memory [DAP=8]      per-rank memory footprint at DAP-n");
    println!("  ladder              the Figure-8 optimization ladder");
    println!("  figures             regenerate every table/figure");
    println!("  faults [STEPS=6]    inject worker panics, NaN grads, and a");
    println!("                      corrupt checkpoint into a real run");
    println!("  tradeoff [STEPS]    expected run time vs checkpoint interval");
    println!("                      and failure rate (default 2000 steps)");
    println!("  bench-kernels       time the CPU kernels (seed vs serial vs");
    println!("                      parallel) and write BENCH_kernels.json");
    println!("  trace-report [PATH] phase-breakdown table of a trace file;");
    println!("                      without PATH, run the blocking-vs-non-");
    println!("                      blocking loader data-wait drill");
    println!("\nglobal flags:");
    println!("  --threads N         pin the compute backend to N threads");
    println!("                      (default: SF_THREADS, then core count)");
    println!("  --trace PATH        record a runtime trace of the command and");
    println!("                      write Chrome trace_event JSON to PATH");
    println!("  --no-fused          use the composed attention op chain instead");
    println!("                      of the fused kernel (A/B and debugging)");
    println!("  --dap N             shard Evoformer activations across N axial");
    println!("                      ranks via the real ring collectives (train");
    println!("                      and faults; the model's n_seq and n_res");
    println!("                      must divide evenly by N)");
    Ok(())
}

/// `trace-report PATH`: load a Chrome-format trace (real or simulated) and
/// print its per-step phase table. `trace-report` with no path runs the
/// paper's data-wait A/B on the real trainer instead: the same straggler
/// sample through the blocking and the non-blocking loader.
fn trace_report(path: Option<&str>, fused: bool) -> CliResult {
    match path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read trace file '{p}': {e}"))?;
            let trace = Trace::from_chrome_json(&text).map_err(|e| format!("'{p}': {e}"))?;
            let report = PhaseReport::from_trace(&trace);
            if report.steps.is_empty() {
                println!(
                    "{} event(s), no training steps recorded (nothing to break down)",
                    trace.events.len()
                );
            } else {
                println!("{}", report.to_table());
            }
            Ok(())
        }
        None => loader_drill(fused),
    }
}

/// The data-wait A/B (paper §3.2 / Figure 5, measured on the real CPU
/// trainer): inject one straggler sample, train twice — once through the
/// strict-order blocking loader, once through the non-blocking pipeline —
/// and compare the `data_wait` share of step time from the traces.
fn loader_drill(fused: bool) -> CliResult {
    const STEPS: u64 = 6;
    const SLOW_SAMPLE: usize = 1;
    let delay = Duration::from_millis(150);
    println!("data-wait drill: {STEPS} steps, sample #{SLOW_SAMPLE} takes an extra {delay:?}\n");
    let mut shares = Vec::new();
    for (label, kind) in [
        ("blocking loader (strict sampler order)", LoaderKind::Blocking),
        ("non-blocking pipeline (ScaleFold)", LoaderKind::NonBlocking),
    ] {
        let was_enabled = sf_trace::is_enabled();
        sf_trace::reset();
        sf_trace::enable();
        let mut cfg = TrainerConfig::tiny();
        cfg.model.evoformer_blocks = 1;
        cfg.model.extra_msa_blocks = 0;
        cfg.dataset_len = 8;
        cfg.loader = kind;
        cfg.fused_kernels = fused;
        let plan = FaultPlan::none().with_slow_sample(SLOW_SAMPLE, delay);
        let mut trainer = Trainer::with_faults(cfg, plan);
        let reports = trainer.train(STEPS);
        let trace = sf_trace::take();
        if !was_enabled {
            sf_trace::disable();
        }
        let report = PhaseReport::from_trace(&trace);
        println!("=== {label} ===");
        println!("{}", report.to_table());
        println!(
            "steps run: {}   data-wait share: {:.2}%\n",
            reports.len(),
            report.data_wait_share() * 100.0
        );
        shares.push((label, report.data_wait_share()));
    }
    let blocking = shares[0].1;
    let nonblocking = shares[1].1;
    println!(
        "summary: blocking {:.2}% vs non-blocking {:.2}% of step time spent waiting for data",
        blocking * 100.0,
        nonblocking * 100.0
    );
    if nonblocking < 0.02 && blocking > nonblocking {
        println!("the non-blocking pipeline drives data wait toward zero.");
        Ok(())
    } else {
        Err(format!(
            "drill expectation failed: non-blocking data-wait share {:.2}% \
             (want < 2% and below the blocking loader's {:.2}%)",
            nonblocking * 100.0,
            blocking * 100.0
        )
        .into())
    }
}

fn bench_kernels(fused: bool) -> CliResult {
    println!(
        "timing CPU kernels at AlphaFold-like shapes ({} threads{})...\n",
        sf_tensor::pool::num_threads(),
        if fused { "" } else { ", --no-fused" }
    );
    let report = kernel_bench::run_mode(0, BenchScale::Full, fused);
    println!("{}", report.to_table());
    // Fused and unfused runs write different files so CI can upload and
    // diff both sides of the A/B.
    let out = if fused {
        "BENCH_kernels.json"
    } else {
        "BENCH_kernels_nofused.json"
    };
    std::fs::write(out, report.to_json())?;
    println!("wrote {out}");
    Ok(())
}

fn train(steps: u64, fused: bool, dap: usize) -> CliResult {
    let mut cfg = TrainerConfig::tiny();
    cfg.fused_kernels = fused;
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    // Larger proteins than the test-scale default: big enough that the
    // pair-stack GEMMs cross the compute backend's dispatch threshold, so a
    // traced run (`--trace`) records the parallel regions too.
    cfg.model.n_res = 32;
    cfg.dap = dap;
    scalefold::DapGroup::validate_config(&cfg.model, dap)?;
    if dap > 1 {
        println!("training the tiny AlphaFold for {steps} steps (DAP-{dap})...");
    } else {
        println!("training the tiny AlphaFold for {steps} steps...");
    }
    let mut trainer = Trainer::new(cfg);
    for r in trainer.train(steps) {
        println!(
            "  step {:>4}  loss {:>8.4}  lDDT-Ca {:.3}  lr {:.2e}",
            r.step, r.loss, r.lddt, r.lr
        );
    }
    let comm = trainer.dap_comm();
    if dap > 1 {
        println!(
            "DAP-{dap} comm: {} all-gather + {} all-to-all elements over {} collectives",
            comm.all_gather_elements,
            comm.all_to_all_elements,
            comm.gathers + comm.switches
        );
    }
    println!("eval (SWA weights): lDDT-Ca {:.3}", trainer.evaluate(3));
    Ok(())
}

fn simulate(dap: usize) -> CliResult {
    let cfg = ModelConfig::paper();
    println!("simulating H100 cluster step time (DP 128 x DAP-{dap})...");
    for (label, opts) in [
        ("reference", OptimizationSet::none()),
        ("ScaleFold", OptimizationSet::scalefold_dap(dap.max(1))),
    ] {
        let graph = scalefold::build_graph(&cfg, &opts);
        let mut cc = ClusterConfig::eos(128, opts.dap);
        cc.cuda_graph = opts.cuda_graph;
        cc.bf16_comm = opts.bf16;
        cc.autotune = opts.triton_ln;
        cc.straggler = if opts.nonblocking_loader {
            StragglerModel::optimized()
        } else {
            StragglerModel::baseline()
        };
        let t = ClusterSim::new(&graph, cc).mean_step_s(40);
        println!("  {label:<10} {t:>7.3} s/step");
    }
    Ok(())
}

fn memory_report(dap: usize) -> CliResult {
    let cfg = ModelConfig::paper();
    let dev = sf_gpusim::DeviceSpec::h100();
    println!("per-rank memory at paper scale, DAP-{dap} (H100, 80 GiB):");
    for (label, ckpt, bf16) in [
        ("fp32, no checkpointing", false, false),
        ("bf16, no checkpointing", false, true),
        ("bf16, checkpointing", true, true),
    ] {
        let f = memory::estimate(&cfg, dap.max(1), ckpt, bf16);
        println!(
            "  {label:<26} {:>7.1} GiB  ({})",
            f.total_gib(),
            if f.fits(&dev) { "fits" } else { "DOES NOT FIT" }
        );
    }
    Ok(())
}

fn ladder() -> CliResult {
    for e in ladder_stages(&ModelConfig::paper()) {
        println!(
            "{:<36} A100 {:>6.2}s ({:>5.2}x)  H100 {:>6.2}s ({:>5.2}x)",
            e.name, e.a100_step_s, e.a100_speedup, e.h100_step_s, e.h100_speedup
        );
    }
    Ok(())
}

fn figures() -> CliResult {
    println!("{}", experiments::table1());
    println!("{}", experiments::fig3());
    println!("{}", experiments::fig4(2000));
    println!("{}", experiments::fig7());
    println!("{}", experiments::fig8());
    println!("{}", experiments::fig9_fig10());
    println!("{}", experiments::fig11());
    Ok(())
}

/// End-to-end fault drill on the *real* trainer: a permanently poisoned
/// sample, a NaN-gradient step, and a bit-flipped checkpoint — the run
/// must survive all three and resume from the newest valid checkpoint.
fn fault_drill(steps: u64, fused: bool, dap: usize) -> CliResult {
    let steps = steps.max(3);
    let mut cfg = TrainerConfig::tiny();
    cfg.fused_kernels = fused;
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    cfg.dataset_len = 6;
    cfg.dap = dap;
    scalefold::DapGroup::validate_config(&cfg.model, dap)?;

    let plan = FaultPlan::none()
        .with_worker_panic(1)
        .with_nan_grad(1);
    println!("fault drill: {steps} steps with an always-panicking sample #1");
    println!("and NaN gradients injected at optimizer step 1...\n");
    let mut trainer = Trainer::with_faults(cfg.clone(), plan);
    for r in trainer.train(steps) {
        println!(
            "  step {:>4}  loss {:>8.4}  lDDT-Ca {:.3}  {}",
            r.step,
            r.loss,
            r.lddt,
            if r.skipped { "SKIPPED (non-finite grads)" } else { "ok" }
        );
    }

    // Checkpoint twice, corrupt the newer file, and prove recovery falls
    // back to the older one.
    let dir = std::env::temp_dir().join(format!("scalefold_fault_drill_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let older = trainer.save_checkpoint_step(&dir)?;
    let more = trainer.train(1);
    let newer = trainer.save_checkpoint_step(&dir)?;
    let len = corrupt::file_len(&newer)?;
    corrupt::flip_bit(&newer, (len / 2) as usize, 3)?;
    println!("\ncheckpoints: {} (valid), {} (bit-flipped)", older.display(), newer.display());

    let mut recovered = Trainer::new(cfg);
    let summary = recovered
        .resume_latest(&dir)?
        .ok_or("no checkpoint found in drill directory")?;
    println!(
        "resume_latest: restored {} (step {:?}), {} corrupt file(s) skipped",
        summary.path.display(),
        summary.step,
        summary.skipped.len()
    );
    assert_eq!(summary.path, older, "must fall back past the corrupt file");
    let _ = more;

    println!("\nrecovery log:");
    for e in trainer.recovery_log().iter().chain(recovered.recovery_log()) {
        println!("  - {e}");
    }
    println!("\ninjected faults that fired:");
    for e in trainer.injector().log() {
        println!("  - {e}");
    }
    std::fs::remove_dir_all(&dir)?;
    println!("\ndrill passed: training survived every injected fault.");
    Ok(())
}

/// Expected time-to-convergence versus checkpoint interval and per-rank
/// failure rate, on the paper-scale simulated cluster.
fn tradeoff(steps: u64) -> CliResult {
    let steps = steps.max(10);
    let graph = scalefold::build_graph(&ModelConfig::paper(), &OptimizationSet::scalefold());
    let sim = ClusterSim::new(&graph, ClusterConfig::eos(128, 8));
    let fm = FailureModel::default();
    let intervals = [50u64, 200, 1000];
    let year_s = 365.25 * 24.0 * 3600.0;
    let mtbfs = [100.0 * year_s, 30.0 * year_s, 5.0 * year_s];
    println!(
        "expected wall-clock of a {steps}-step run on {} ranks",
        sim.config().total_ranks()
    );
    println!("(columns: per-rank MTBF; rows: checkpoint every k steps)\n");
    print!("{:>12}", "k \\ mtbf");
    for &m in &mtbfs {
        print!("{:>14.0}y", m / year_s);
    }
    println!();
    let grid = sim.convergence_tradeoff(steps, &intervals, &mtbfs, &fm);
    for (i, &interval) in intervals.iter().enumerate() {
        print!("{interval:>12}");
        for (j, _) in mtbfs.iter().enumerate() {
            let est = &grid[i * mtbfs.len() + j].estimate;
            print!("{:>14.1}h", est.expected_total_s / 3600.0);
        }
        println!();
    }
    let best = grid
        .iter()
        .min_by(|a, b| a.estimate.expected_total_s.total_cmp(&b.estimate.expected_total_s))
        .ok_or("empty trade-off grid")?;
    println!(
        "\nbest cell: checkpoint every {} steps at {:.0}-year MTBF",
        best.ckpt_interval,
        best.rank_mtbf_s / year_s
    );
    println!(
        "  expected {:.1} h = compute {:.1} h + checkpoints {:.2} h + failures {:.2} h",
        best.estimate.expected_total_s / 3600.0,
        best.estimate.compute_s / 3600.0,
        best.estimate.checkpoint_overhead_s / 3600.0,
        best.estimate.failure_overhead_s / 3600.0
    );
    Ok(())
}
