//! Property tests for the autodiff tape: numeric gradient checks over
//! randomly-composed op chains, linearity of the backward map, and
//! checkpointing transparency under arbitrary segment contents.

use proptest::prelude::*;
use sf_autograd::{Graph, Var};
use sf_tensor::Tensor;

/// Smooth unary ops that are safe on any input.
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Sigmoid,
    Tanh,
    Gelu,
    Scale(i8),
    AddScalar(i8),
    Square,
    Neg,
}

fn arb_unary() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Gelu),
        (-3i8..4).prop_map(UnaryOp::Scale),
        (-3i8..4).prop_map(UnaryOp::AddScalar),
        Just(UnaryOp::Square),
        Just(UnaryOp::Neg),
    ]
}

fn apply(g: &mut Graph, op: UnaryOp, x: Var) -> Var {
    match op {
        UnaryOp::Sigmoid => g.sigmoid(x).expect("valid var"),
        UnaryOp::Tanh => g.tanh(x).expect("valid var"),
        UnaryOp::Gelu => g.gelu(x).expect("valid var"),
        UnaryOp::Scale(s) => g.scale(x, s as f32 * 0.3 + 0.1).expect("valid var"),
        UnaryOp::AddScalar(s) => g.add_scalar(x, s as f32 * 0.5).expect("valid var"),
        UnaryOp::Square => g.square(x).expect("valid var"),
        UnaryOp::Neg => g.neg(x).expect("valid var"),
    }
}

/// Loss of the chain applied to `input`: sum of the final tensor.
fn chain_loss(input: &Tensor, ops: &[UnaryOp]) -> (f32, Tensor) {
    let mut g = Graph::new();
    let x = g.param(input.clone());
    let mut h = x;
    for &op in ops {
        h = apply(&mut g, op, h);
    }
    let loss = g.sum_all(h).expect("scalar");
    let value = g.value(loss).item();
    g.backward(loss).expect("backward");
    (value, g.grad(x).cloned().unwrap_or_else(|| Tensor::zeros(input.dims())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Analytic gradients of arbitrary unary chains match central
    /// differences.
    #[test]
    fn random_chain_gradcheck(
        ops in proptest::collection::vec(arb_unary(), 1..6),
        seed in any::<u64>(),
    ) {
        let input = Tensor::randn(&[5], seed).mul_scalar(0.8);
        let (_, grad) = chain_loss(&input, &ops);
        let eps = 1e-2f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let numeric = (chain_loss(&plus, &ops).0 - chain_loss(&minus, &ops).0) / (2.0 * eps);
            let analytic = grad.data()[i];
            prop_assert!(
                (numeric - analytic).abs() <= 5e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                "elem {i}: numeric {numeric} vs analytic {analytic} (ops {ops:?})"
            );
        }
    }

    /// Backward is linear: grad of (a·f + b·f) equals (a+b)·grad f.
    #[test]
    fn backward_linearity(a in -3.0f32..3.0, b in -3.0f32..3.0, seed in any::<u64>()) {
        let input = Tensor::randn(&[4], seed);
        let run = |ca: f32, cb: f32| -> Tensor {
            let mut g = Graph::new();
            let x = g.param(input.clone());
            let f = g.gelu(x).expect("var");
            let fa = g.scale(f, ca).expect("var");
            let fb = g.scale(f, cb).expect("var");
            let s = g.add(fa, fb).expect("var");
            let loss = g.sum_all(s).expect("scalar");
            g.backward(loss).expect("bwd");
            g.grad(x).expect("grad").clone()
        };
        let combined = run(a, b);
        let base = run(1.0, 0.0);
        let expect = base.mul_scalar(a + b);
        prop_assert!(combined.allclose(&expect, 1e-4));
    }

    /// Checkpointing any unary chain is gradient-transparent.
    #[test]
    fn checkpoint_transparent_for_random_chains(
        ops in proptest::collection::vec(arb_unary(), 1..5),
        seed in any::<u64>(),
    ) {
        let input = Tensor::randn(&[3, 3], seed).mul_scalar(0.5);

        let mut direct = Graph::new();
        let xd = direct.param(input.clone());
        let mut h = xd;
        for &op in &ops {
            h = apply(&mut direct, op, h);
        }
        let ld = direct.sum_all(h).expect("scalar");
        direct.backward(ld).expect("bwd");

        let mut ck = Graph::new();
        let xc = ck.param(input);
        let ops2 = ops.clone();
        let out = ck
            .checkpoint(&[xc], move |sub, ins| {
                let mut h = ins[0];
                for &op in &ops2 {
                    h = apply(sub, op, h);
                }
                Ok(h)
            })
            .expect("checkpoint");
        let lc = ck.sum_all(out).expect("scalar");
        ck.backward(lc).expect("bwd");

        prop_assert!(direct
            .grad(xd)
            .expect("grad")
            .allclose(ck.grad(xc).expect("grad"), 1e-4));
        // Values agree too.
        prop_assert!((direct.value(ld).item() - ck.value(lc).item()).abs() < 1e-4);
    }

    /// zero_grads really clears; re-running backward restores identical
    /// gradients (determinism of the tape).
    #[test]
    fn backward_is_deterministic(seed in any::<u64>()) {
        let input = Tensor::randn(&[6], seed);
        let mut g = Graph::new();
        let x = g.param(input);
        let y = g.gelu(x).expect("var");
        let loss = g.sum_all(y).expect("scalar");
        g.backward(loss).expect("bwd");
        let first = g.grad(x).expect("grad").clone();
        g.zero_grads();
        prop_assert!(g.grad(x).is_none());
        g.backward(loss).expect("bwd");
        prop_assert_eq!(g.grad(x).expect("grad"), &first);
    }
}

/// Checkpoint-robustness properties: arbitrary corruption must surface as
/// a typed `CheckpointError` — never a panic — and directory recovery must
/// step over it.
mod checkpoint_corruption {
    use super::*;
    use proptest::collection::vec;
    use sf_autograd::checkpoint_io::save_v1;
    use sf_autograd::ParamStore;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A store with 1–4 parameters of arbitrary small payloads.
    fn arb_store() -> impl Strategy<Value = ParamStore> {
        vec(vec(-1000i32..1000, 1..12), 1..5).prop_map(|tensors| {
            let mut s = ParamStore::new();
            for (i, ints) in tensors.into_iter().enumerate() {
                let data: Vec<f32> = ints.into_iter().map(|x| x as f32 * 0.125).collect();
                let n = data.len();
                s.insert(format!("p{i}"), Tensor::from_vec(data, &[n]).expect("shape"));
            }
            s
        })
    }

    fn unique_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sf_ckpt_prop_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Flipping any single bit past the header yields a typed error,
        /// never a panic and never a silently-wrong load.
        #[test]
        fn bit_flips_are_detected(
            store in arb_store(),
            pos in any::<u64>(),
            bit in 0u8..8,
        ) {
            let mut bytes = Vec::new();
            store.save_to(&mut bytes).expect("serialize");
            // Skip the 16-byte header: count/version flips can legally
            // decode as a shorter file; everything after it is CRC-covered.
            let idx = 16 + (pos as usize) % (bytes.len() - 16);
            bytes[idx] ^= 1 << bit;
            let result = ParamStore::load_from(bytes.as_slice());
            prop_assert!(
                result.is_err(),
                "flip at byte {idx} bit {bit} went undetected"
            );
        }

        /// Truncation at any point yields a typed error, never a panic.
        #[test]
        fn truncation_is_detected(store in arb_store(), cut in any::<u64>()) {
            let mut bytes = Vec::new();
            store.save_to(&mut bytes).expect("serialize");
            let keep = (cut as usize) % bytes.len();
            bytes.truncate(keep);
            prop_assert!(ParamStore::load_from(bytes.as_slice()).is_err());
        }

        /// v1 files (no CRC) load bit-exactly under the v2 reader.
        #[test]
        fn v1_loads_under_v2(store in arb_store()) {
            let mut bytes = Vec::new();
            save_v1(&store, &mut bytes).expect("v1 serialize");
            let loaded = ParamStore::load_from(bytes.as_slice()).expect("v1 read");
            prop_assert_eq!(loaded.len(), store.len());
            for (name, t) in store.iter() {
                prop_assert_eq!(loaded.get(name).expect("present"), t);
            }
        }

        /// Directory recovery always lands on the older valid file when
        /// the newest is corrupted at an arbitrary position.
        #[test]
        fn latest_valid_skips_arbitrary_corruption(
            store in arb_store(),
            pos in any::<u64>(),
            bit in 0u8..8,
        ) {
            let dir = unique_dir("skip");
            store.save_file(dir.join("ckpt-000005.sfck")).expect("save old");
            let newest = dir.join("ckpt-000009.sfck");
            store.save_file(&newest).expect("save new");
            let mut bytes = std::fs::read(&newest).expect("read");
            let idx = 16 + (pos as usize) % (bytes.len() - 16);
            bytes[idx] ^= 1 << bit;
            std::fs::write(&newest, bytes).expect("rewrite");

            let latest = ParamStore::load_latest_valid(&dir)
                .expect("scan must not error while a valid file exists")
                .expect("found");
            prop_assert_eq!(latest.step, Some(5));
            prop_assert_eq!(latest.skipped.len(), 1);
            for (name, t) in store.iter() {
                prop_assert_eq!(latest.store.get(name).expect("present"), t);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
