//! Property tests for the optimizers: fused == unfused under arbitrary
//! gradient streams, clipping invariants, bucket round-trips, and schedule
//! laws.

use proptest::prelude::*;
use sf_autograd::ParamStore;
use sf_optim::{
    clip_by_global_norm, Adam, AdamConfig, FusedAdamSwa, GradBuckets, Grads, LrSchedule, Swa,
};
use sf_tensor::Tensor;

fn store_and_grads(shapes: &[usize], seed: u64) -> (ParamStore, Vec<Grads>) {
    let mut store = ParamStore::new();
    for (i, &n) in shapes.iter().enumerate() {
        store.insert(format!("p{i:03}"), Tensor::randn(&[n], seed.wrapping_add(i as u64)));
    }
    let steps = 5;
    let grads = (0..steps)
        .map(|s| {
            let mut g = Grads::new();
            for (i, &n) in shapes.iter().enumerate() {
                g.insert(
                    format!("p{i:03}"),
                    Tensor::randn(&[n], seed ^ (s * 131 + i as u64 + 7)),
                );
            }
            g
        })
        .collect();
    (store, grads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fused Adam+SWA kernel is numerically equivalent to sequential
    /// Adam-then-SWA for arbitrary parameter shapes and gradient streams.
    #[test]
    fn fused_equals_unfused(
        shapes in proptest::collection::vec(1usize..40, 1..6),
        seed in any::<u64>(),
        lr in 1e-4f32..1e-1,
        decay in 0.5f32..0.999,
    ) {
        let (store0, grad_stream) = store_and_grads(&shapes, seed);
        let mut fused_store = store0.clone();
        let mut plain_store = store0;
        let cfg = AdamConfig::default();
        let mut fused = FusedAdamSwa::new(cfg, decay);
        let mut adam = Adam::new(cfg);
        let mut swa = Swa::new(decay);
        for grads in &grad_stream {
            fused.step(&mut fused_store, grads, lr);
            adam.step(&mut plain_store, grads, lr);
            swa.update(&plain_store);
        }
        for (name, p) in plain_store.iter() {
            prop_assert!(fused_store.get(name).expect("present").allclose(p, 1e-4));
            prop_assert!(fused
                .averaged(name)
                .expect("present")
                .allclose(swa.averaged(name).expect("present"), 1e-4));
        }
    }

    /// After clipping, the global norm is at most the threshold (within
    /// rounding), and gradients below it are untouched.
    #[test]
    fn clip_bounds_global_norm(
        shapes in proptest::collection::vec(1usize..30, 1..5),
        seed in any::<u64>(),
        max_norm in 0.1f32..10.0,
    ) {
        let (_, streams) = store_and_grads(&shapes, seed);
        let mut grads = streams.into_iter().next().expect("one step");
        let before: Grads = grads.clone();
        let norm = clip_by_global_norm(&mut grads, max_norm);
        let after_norm: f32 = grads
            .values()
            .map(|t| {
                let n = t.norm() as f64;
                n * n
            })
            .sum::<f64>()
            .sqrt() as f32;
        prop_assert!(after_norm <= max_norm * 1.001 + 1e-6);
        if norm <= max_norm {
            for (name, t) in &before {
                prop_assert_eq!(&grads[name], t);
            }
        }
    }

    /// Bucketed clipping matches per-tensor clipping elementwise.
    #[test]
    fn bucketed_clip_matches_per_tensor(
        shapes in proptest::collection::vec(1usize..30, 1..6),
        seed in any::<u64>(),
        max_norm in 0.05f32..5.0,
        bucket_kib in 1usize..64,
    ) {
        let (_, streams) = store_and_grads(&shapes, seed);
        let grads = streams.into_iter().next().expect("one step");
        let mut per_tensor = grads.clone();
        clip_by_global_norm(&mut per_tensor, max_norm);
        let mut buckets = GradBuckets::pack(&grads, bucket_kib * 1024);
        buckets.clip(max_norm);
        let unpacked = buckets.unpack();
        for (name, t) in &per_tensor {
            let flat = t.reshape(&[t.len()]).expect("sized");
            prop_assert!(flat.allclose(&unpacked[name], 1e-5), "mismatch at {}", name);
        }
    }

    /// Bucket pack/unpack is lossless for any bucket size.
    #[test]
    fn bucket_round_trip(
        shapes in proptest::collection::vec(1usize..50, 1..8),
        seed in any::<u64>(),
        bucket_bytes in 4usize..4096,
    ) {
        let (_, streams) = store_and_grads(&shapes, seed);
        let grads = streams.into_iter().next().expect("one step");
        let buckets = GradBuckets::pack(&grads, bucket_bytes);
        let back = buckets.unpack();
        for (name, t) in &grads {
            prop_assert_eq!(back[name].data(), t.data());
        }
    }

    /// The LR schedule is non-negative, bounded by the peak, and
    /// non-decreasing through warm-up.
    #[test]
    fn schedule_laws(
        peak in 1e-5f32..1e-1,
        warmup in 0u64..5000,
        s1 in 0u64..100_000,
    ) {
        let sched = LrSchedule {
            peak_lr: peak,
            warmup_steps: warmup,
            decay_after: 50_000,
            decay_factor: 0.95,
            decay_every: 50_000,
        };
        let lr = sched.lr_at(s1);
        prop_assert!(lr >= 0.0 && lr <= peak * 1.0001);
        if s1 + 1 < warmup {
            prop_assert!(sched.lr_at(s1 + 1) >= lr);
        }
    }
}
