//! Finite-difference gradient checks for every differentiable op on the
//! tape. Each check perturbs individual input elements and compares the
//! numeric directional derivative with the analytic gradient.

use sf_autograd::{Graph, Var};
use sf_tensor::Tensor;

/// Builds a scalar loss from `build`, returns (loss_value, analytic_grads).
fn run<F>(inputs: &[Tensor], build: F) -> (f32, Vec<Tensor>)
where
    F: Fn(&mut Graph, &[Var]) -> Var,
{
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.param(t.clone())).collect();
    let loss = build(&mut g, &vars);
    assert_eq!(g.value(loss).len(), 1, "loss must be scalar");
    let loss_val = g.value(loss).item();
    g.backward(loss).unwrap();
    let grads = vars
        .iter()
        .map(|&v| {
            g.grad(v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(g.value(v).dims()))
        })
        .collect();
    (loss_val, grads)
}

/// Central-difference check on a sample of elements of each input.
fn gradcheck<F>(inputs: &[Tensor], build: F, tol: f32)
where
    F: Fn(&mut Graph, &[Var]) -> Var + Copy,
{
    let (_, grads) = run(inputs, build);
    let eps = 1e-2f32;
    for (which, input) in inputs.iter().enumerate() {
        let probe_count = input.len().min(6);
        for p in 0..probe_count {
            let idx = p * input.len() / probe_count;
            let mut plus = inputs.to_vec();
            plus[which].data_mut()[idx] += eps;
            let mut minus = inputs.to_vec();
            minus[which].data_mut()[idx] -= eps;
            let (lp, _) = run(&plus, build);
            let (lm, _) = run(&minus, build);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads[which].data()[idx];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                "input {which} elem {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}

/// Weighted sum to produce a scalar loss that exercises all elements.
fn weighted_loss(g: &mut Graph, x: Var) -> Var {
    let dims = g.value(x).dims().to_vec();
    let n: usize = dims.iter().product();
    let w = Tensor::from_vec((0..n).map(|i| ((i % 7) as f32) - 3.0).collect(), &dims).unwrap();
    let wc = g.constant(w);
    let prod = g.mul(x, wc).unwrap();
    g.sum_all(prod).unwrap()
}

#[test]
fn grad_add_sub_broadcast() {
    gradcheck(
        &[Tensor::randn(&[3, 4], 1), Tensor::randn(&[4], 2)],
        |g, v| {
            let s = g.add(v[0], v[1]).unwrap();
            let d = g.sub(s, v[0]).unwrap();
            let back = g.add(d, v[0]).unwrap();
            weighted_loss(g, back)
        },
        1e-2,
    );
}

#[test]
fn grad_mul_div_broadcast() {
    gradcheck(
        &[
            Tensor::randn(&[2, 3], 3).add_scalar(3.0),
            Tensor::randn(&[2, 1], 4).add_scalar(3.0),
        ],
        |g, v| {
            let m = g.mul(v[0], v[1]).unwrap();
            let q = g.div(m, v[1]).unwrap();
            let m2 = g.mul(q, v[0]).unwrap();
            weighted_loss(g, m2)
        },
        2e-2,
    );
}

#[test]
fn grad_activations() {
    gradcheck(
        &[Tensor::randn(&[3, 5], 5)],
        |g, v| {
            let a = g.gelu(v[0]).unwrap();
            let b = g.sigmoid(a).unwrap();
            let c = g.tanh(b).unwrap();
            weighted_loss(g, c)
        },
        2e-2,
    );
}

#[test]
fn grad_relu_square_exp_sqrt() {
    gradcheck(
        &[Tensor::rand_uniform(&[2, 4], 0.5, 2.0, 6)],
        |g, v| {
            let r = g.relu(v[0]).unwrap();
            let s = g.square(r).unwrap();
            let e = g.exp(s).unwrap();
            let q = g.sqrt(e).unwrap();
            weighted_loss(g, q)
        },
        3e-2,
    );
}

#[test]
fn grad_matmul() {
    gradcheck(
        &[Tensor::randn(&[3, 4], 7), Tensor::randn(&[4, 2], 8)],
        |g, v| {
            let c = g.matmul(v[0], v[1]).unwrap();
            weighted_loss(g, c)
        },
        1e-2,
    );
}

#[test]
fn grad_matmul_batched_rhs_broadcast() {
    gradcheck(
        &[Tensor::randn(&[2, 3, 4], 9), Tensor::randn(&[4, 2], 10)],
        |g, v| {
            let c = g.matmul(v[0], v[1]).unwrap();
            weighted_loss(g, c)
        },
        1e-2,
    );
}

#[test]
fn grad_softmax() {
    gradcheck(
        &[Tensor::randn(&[2, 5], 11)],
        |g, v| {
            let s = g.softmax(v[0]).unwrap();
            weighted_loss(g, s)
        },
        1e-2,
    );
}

#[test]
fn grad_layernorm_all_inputs() {
    gradcheck(
        &[
            Tensor::randn(&[4, 6], 12).mul_scalar(2.0),
            Tensor::randn(&[6], 13).add_scalar(1.0),
            Tensor::randn(&[6], 14),
        ],
        |g, v| {
            let y = g.layer_norm(v[0], v[1], v[2]).unwrap();
            weighted_loss(g, y)
        },
        3e-2,
    );
}

#[test]
fn grad_attention_with_bias() {
    gradcheck(
        &[
            Tensor::randn(&[1, 2, 4, 3], 15).mul_scalar(0.5),
            Tensor::randn(&[1, 2, 4, 3], 16).mul_scalar(0.5),
            Tensor::randn(&[1, 2, 4, 3], 17).mul_scalar(0.5),
            Tensor::randn(&[2, 4, 4], 18).mul_scalar(0.5),
        ],
        |g, v| {
            let out = g.attention(v[0], v[1], v[2], Some(v[3]), 0.6).unwrap();
            weighted_loss(g, out)
        },
        3e-2,
    );
}

#[test]
fn grad_attention_matches_composed() {
    // Fused attention node's gradients must equal the matmul+softmax
    // composition's gradients.
    let q0 = Tensor::randn(&[2, 5, 4], 19).mul_scalar(0.4);
    let k0 = Tensor::randn(&[2, 5, 4], 20).mul_scalar(0.4);
    let v0 = Tensor::randn(&[2, 5, 4], 21).mul_scalar(0.4);
    let scale = 0.5;

    let (_, fused) = run(&[q0.clone(), k0.clone(), v0.clone()], |g, v| {
        let out = g.attention(v[0], v[1], v[2], None, scale).unwrap();
        weighted_loss(g, out)
    });
    let (_, composed) = run(&[q0, k0, v0], |g, v| {
        let kt = g.permute(v[1], &[0, 2, 1]).unwrap();
        let logits = g.matmul(v[0], kt).unwrap();
        let scaled = g.scale(logits, scale).unwrap();
        let p = g.softmax(scaled).unwrap();
        let out = g.matmul(p, v[2]).unwrap();
        weighted_loss(g, out)
    });
    for (a, b) in fused.iter().zip(composed.iter()) {
        assert!(a.allclose(b, 1e-4));
    }
}

#[test]
fn grad_shape_ops() {
    gradcheck(
        &[Tensor::randn(&[2, 3, 4], 22)],
        |g, v| {
            let r = g.reshape(v[0], &[6, 4]).unwrap();
            let p = g.permute(r, &[1, 0]).unwrap();
            let s = g.slice_axis(p, 0, 1, 3).unwrap();
            weighted_loss(g, s)
        },
        1e-2,
    );
}

#[test]
fn grad_concat() {
    gradcheck(
        &[Tensor::randn(&[2, 3], 23), Tensor::randn(&[2, 2], 24)],
        |g, v| {
            let c = g.concat(&[v[0], v[1]], 1).unwrap();
            weighted_loss(g, c)
        },
        1e-2,
    );
}

#[test]
fn grad_reductions() {
    gradcheck(
        &[Tensor::randn(&[3, 4], 25)],
        |g, v| {
            let s = g.sum_axis(v[0], 0).unwrap();
            let m = g.mean_axis(v[0], 1).unwrap();
            let l1 = weighted_loss(g, s);
            let l2 = weighted_loss(g, m);
            g.add(l1, l2).unwrap()
        },
        1e-2,
    );
}

#[test]
fn grad_broadcast_to() {
    gradcheck(
        &[Tensor::randn(&[1, 4], 26)],
        |g, v| {
            let b = g.broadcast_to(v[0], &[3, 4]).unwrap();
            weighted_loss(g, b)
        },
        1e-2,
    );
}

#[test]
fn grad_mean_all_scale_neg() {
    gradcheck(
        &[Tensor::randn(&[5], 27)],
        |g, v| {
            let n = g.neg(v[0]).unwrap();
            let sc = g.scale(n, 2.5).unwrap();
            let shifted = g.add_scalar(sc, 1.0).unwrap();
            g.mean_all(shifted).unwrap()
        },
        1e-2,
    );
}

#[test]
fn grad_checkpoint_segment() {
    gradcheck(
        &[Tensor::randn(&[3, 3], 28), Tensor::randn(&[3, 3], 29)],
        |g, v| {
            let out = g
                .checkpoint(&[v[0], v[1]], |sub, ins| {
                    let m = sub.matmul(ins[0], ins[1])?;
                    sub.gelu(m)
                })
                .unwrap();
            weighted_loss(g, out)
        },
        2e-2,
    );
}

#[test]
fn dropout_zero_p_is_identity_and_differentiable() {
    let x0 = Tensor::randn(&[4, 4], 30);
    let (_, grads) = run(std::slice::from_ref(&x0), |g, v| {
        let d = g.dropout(v[0], 0.0, 99).unwrap();
        g.sum_all(d).unwrap()
    });
    assert!(grads[0].allclose(&Tensor::ones(&[4, 4]), 1e-6));
}

#[test]
fn dropout_grad_respects_mask() {
    let x0 = Tensor::randn(&[64], 31);
    let (_, grads) = run(&[x0], |g, v| {
        let d = g.dropout(v[0], 0.5, 7).unwrap();
        g.sum_all(d).unwrap()
    });
    // Gradient elements are either 0 (dropped) or 1/keep (kept).
    for &gv in grads[0].data() {
        assert!(gv == 0.0 || (gv - 2.0).abs() < 1e-5, "grad {gv}");
    }
}

#[test]
fn backward_rejects_non_scalar() {
    let mut g = Graph::new();
    let x = g.param(Tensor::zeros(&[2, 2]));
    assert!(g.backward(x).is_err());
}

#[test]
fn zero_grads_resets() {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(vec![2.0], &[1]).unwrap());
    let y = g.square(x).unwrap();
    let loss = g.sum_all(y).unwrap();
    g.backward(loss).unwrap();
    assert!(g.grad(x).is_some());
    g.zero_grads();
    assert!(g.grad(x).is_none());
}

#[test]
fn backward_accumulates_across_calls() {
    let mut g = Graph::new();
    let x = g.param(Tensor::from_vec(vec![3.0], &[1]).unwrap());
    let y = g.square(x).unwrap();
    let loss = g.sum_all(y).unwrap();
    g.backward(loss).unwrap();
    g.backward(loss).unwrap();
    assert_eq!(g.grad(x).unwrap().data(), &[12.0]); // 2 * (2x)
}
