//! The Evoformer block: the nine sub-modules of the paper's Figure 2.
//!
//! Shapes throughout: the MSA representation `m` is `[S, R, c_m]` (sequences
//! × residues × channels) and the pair representation `z` is `[R, R, c_z]`.
//!
//! The module order matches AlphaFold Algorithm 6:
//! 1. MSA row-wise gated self-attention **with pair bias**
//! 2. MSA column-wise gated self-attention
//! 3. MSA transition
//! 4. Outer product mean (MSA → pair communication)
//! 5. Triangle multiplicative update, outgoing edges
//! 6. Triangle multiplicative update, incoming edges
//! 7. Triangle self-attention around the starting node
//! 8. Triangle self-attention around the ending node
//! 9. Pair transition
//!
//! Every sub-module is residual. The four projections before each attention
//! (Q, K, V, gate) are bundled through [`crate::linear::batched_apply`] —
//! the paper's "GEMM Batching" — and attention itself is the fused
//! pair-bias kernel from `sf-autograd`/`sf-tensor`.
//!
//! All of the block's heavy kernels (the bundled GEMMs, LayerNorm,
//! softmax, and fused attention) execute on the parallel CPU backend in
//! `sf_tensor::pool`; the thread count comes from `SF_THREADS` or
//! `sf_tensor::pool::set_num_threads`, and results are bit-identical at
//! every thread count, so Evoformer outputs do not depend on parallelism.

use crate::dap::{dap_all_gather, dap_axis_switch, dap_scatter, AxialCollectives};
use crate::linear::{batched_apply, layer_norm, Linear};
use sf_autograd::{Graph, ParamStore, Result, Var};

/// Channel dimensions for one Evoformer block instance (the main stack, the
/// extra-MSA stack, and the template pair stack use different widths).
#[derive(Debug, Clone, Copy)]
pub struct BlockDims {
    /// MSA representation channels.
    pub c_m: usize,
    /// Pair representation channels.
    pub c_z: usize,
    /// MSA attention heads.
    pub msa_heads: usize,
    /// Pair attention heads.
    pub pair_heads: usize,
    /// Per-head width for MSA attention.
    pub c_hidden_msa: usize,
    /// Per-head width for pair attention.
    pub c_hidden_pair: usize,
    /// Triangle multiplicative hidden channels.
    pub c_hidden_mul: usize,
    /// Outer-product-mean hidden channels.
    pub c_opm: usize,
    /// Transition expansion factor.
    pub transition_factor: usize,
    /// Dropout probability on attention/triangle outputs (0 disables).
    pub dropout: f32,
    /// Use the fused attention-softmax-gate kernel (vs the composed op
    /// chain) in gated axis attention.
    pub fused: bool,
}

impl BlockDims {
    /// Dimensions of the main Evoformer stack for `cfg`.
    pub fn main(cfg: &crate::ModelConfig) -> Self {
        BlockDims {
            c_m: cfg.c_m,
            c_z: cfg.c_z,
            msa_heads: cfg.msa_heads,
            pair_heads: cfg.pair_heads,
            c_hidden_msa: cfg.c_hidden_msa,
            c_hidden_pair: cfg.c_hidden_pair,
            c_hidden_mul: cfg.c_hidden_mul,
            c_opm: cfg.c_opm,
            transition_factor: cfg.transition_factor,
            dropout: cfg.dropout,
            fused: cfg.fused_kernels,
        }
    }

    /// Dimensions of the extra-MSA stack (narrow MSA channels).
    pub fn extra(cfg: &crate::ModelConfig) -> Self {
        BlockDims {
            c_m: cfg.c_e,
            ..BlockDims::main(cfg)
        }
    }

    /// Dimensions of the template pair stack (pair-only, width `c_t`).
    pub fn template(cfg: &crate::ModelConfig) -> Self {
        BlockDims {
            c_m: cfg.c_t,
            c_z: cfg.c_t,
            ..BlockDims::main(cfg)
        }
    }
}

/// One full Evoformer block. Returns the updated `(m, z)`.
///
/// # Errors
///
/// Propagates shape errors from the underlying tensor ops (a mismatch
/// indicates an inconsistent `dims` / input combination).
pub fn evoformer_block(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    m: Var,
    z: Var,
    ckpt: bool,
) -> Result<(Var, Var)> {
    evoformer_block_ext(g, store, dims, prefix, m, z, ckpt, false)
}

/// [`evoformer_block`] with the extra-MSA variant switch: when
/// `global_column` is set, the column attention uses AlphaFold's *global*
/// (mean-query) form — the memory-cheap variant the extra-MSA stack needs
/// for its thousands of sequences.
#[allow(clippy::too_many_arguments)]
pub fn evoformer_block_ext(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    m: Var,
    z: Var,
    ckpt: bool,
    global_column: bool,
) -> Result<(Var, Var)> {
    let trans = if ckpt { transition_checkpointed } else { transition };
    let m = msa_row_attention_with_pair_bias(g, store, dims, &format!("{prefix}.msa_row"), m, z)?;
    let m = if global_column {
        msa_global_column_attention(g, store, dims, &format!("{prefix}.msa_col"), m)?
    } else {
        msa_column_attention(g, store, dims, &format!("{prefix}.msa_col"), m)?
    };
    let m = trans(g, store, dims.c_m, dims.transition_factor, &format!("{prefix}.msa_trans"), m)?;
    let z = outer_product_mean(g, store, dims, &format!("{prefix}.opm"), m, z)?;
    let z = triangle_multiplication(g, store, dims, &format!("{prefix}.tri_mul_out"), z, true)?;
    let z = triangle_multiplication(g, store, dims, &format!("{prefix}.tri_mul_in"), z, false)?;
    let z = triangle_attention(g, store, dims, &format!("{prefix}.tri_att_start"), z, true)?;
    let z = triangle_attention(g, store, dims, &format!("{prefix}.tri_att_end"), z, false)?;
    let z = trans(g, store, dims.c_z, dims.transition_factor, &format!("{prefix}.pair_trans"), z)?;
    Ok((m, z))
}

/// [`evoformer_block`] under **Dynamic Axial Parallelism** (ScaleFold
/// §3.3 / FastFold): the four axial attentions run on activation shards —
/// MSA row attention sharded along sequences, MSA column and triangle
/// attention along residues — with the sharded axis switched by the
/// injected executor's all-to-all and results rejoined by its all-gather.
/// The remaining modules (transitions, outer product mean, triangle
/// multiplication) run replicated, as their cost does not grow with the
/// axial length being sharded here.
///
/// With `dropout = 0` the output is bitwise-identical to
/// [`evoformer_block`] for any rank count: every sharded kernel (LN, the
/// bundled QKV-gate GEMM, attention) is row-independent, and all data
/// movement enters the tape through the verified external concat. Under
/// dropout the per-shard masks are rank-salted, so DAP-k > 1 is a
/// *different but equally valid* sample of the dropout noise.
///
/// # Panics
///
/// Panics if the sequence or residue axis is not divisible by the rank
/// count.
///
/// # Errors
///
/// Propagates shape errors from the underlying tensor ops and external
/// value mismatches from the collective executor.
#[allow(clippy::too_many_arguments)]
pub fn evoformer_block_dap(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    m: Var,
    z: Var,
    ckpt: bool,
    dap: &dyn AxialCollectives,
) -> Result<(Var, Var)> {
    let trans = if ckpt { transition_checkpointed } else { transition };
    let m = dap_msa_attention(g, store, dims, prefix, m, z, dap)?;
    let m = trans(g, store, dims.c_m, dims.transition_factor, &format!("{prefix}.msa_trans"), m)?;
    let z = outer_product_mean(g, store, dims, &format!("{prefix}.opm"), m, z)?;
    let z = triangle_multiplication(g, store, dims, &format!("{prefix}.tri_mul_out"), z, true)?;
    let z = triangle_multiplication(g, store, dims, &format!("{prefix}.tri_mul_in"), z, false)?;
    let z = dap_triangle_attention(g, store, dims, prefix, z, dap)?;
    let z = trans(g, store, dims.c_z, dims.transition_factor, &format!("{prefix}.pair_trans"), z)?;
    Ok((m, z))
}

/// Modules 1 + 2 under DAP: row attention on sequence shards, one axis
/// switch, column attention on residue shards, one all-gather back to the
/// replicated `[S, R, c_m]` layout for the (unsharded) MSA transition.
fn dap_msa_attention(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    m: Var,
    z: Var,
    dap: &dyn AxialCollectives,
) -> Result<Var> {
    let k = dap.ranks();
    let row_prefix = format!("{prefix}.msa_row");
    let col_prefix = format!("{prefix}.msa_col");
    // The pair bias is shared by every rank's row attention (it indexes
    // residues only), so it is computed once from the replicated z.
    let z_ln = layer_norm(g, store, &format!("{row_prefix}.ln_z"), dims.c_z, z)?;
    let bias_rr = Linear::no_bias(format!("{row_prefix}.pair_bias"), dims.c_z, dims.msa_heads)
        .apply(g, store, z_ln)?;
    let bias = g.permute(bias_rr, &[2, 0, 1])?;

    // Row attention on sequence shards [S/k, R, c_m]. Parameter prefixes
    // are identical across ranks: each rank binds the same weights, and
    // `grads_by_name` sums the per-rank weight gradients — the same
    // reduction DAP performs over its gradient all-reduce.
    let m_shards = dap_scatter(g, m, k)?;
    let mut row_out = Vec::with_capacity(k);
    for (rank, &sh) in m_shards.iter().enumerate() {
        let m_ln = layer_norm(g, store, &format!("{row_prefix}.ln_m"), dims.c_m, sh)?;
        let att = gated_axis_attention(
            g,
            store,
            &row_prefix,
            m_ln,
            Some(bias),
            dims.c_m,
            dims.msa_heads,
            dims.c_hidden_msa,
            dims.fused,
        )?;
        row_out.push(dropout_residual_ranked(g, dims, &row_prefix, rank, sh, att)?);
    }

    // Axis switch: sequence-sharded -> residue-sharded [R/k, S, c_m].
    let col_shards = dap_axis_switch(g, dap, &row_out)?;
    let mut col_out = Vec::with_capacity(k);
    for &sh in &col_shards {
        let ln = layer_norm(g, store, &format!("{col_prefix}.ln"), dims.c_m, sh)?;
        let att = gated_axis_attention(
            g,
            store,
            &col_prefix,
            ln,
            None,
            dims.c_m,
            dims.msa_heads,
            dims.c_hidden_msa,
            dims.fused,
        )?;
        // Column attention has no dropout in the unsharded path either.
        col_out.push(g.add(sh, att)?);
    }
    let full = dap_all_gather(g, dap, &col_out)?; // [R, S, c_m]
    g.permute(full, &[1, 0, 2])
}

/// Modules 7 + 8 under DAP: starting-node attention on row shards of the
/// pair tensor, one axis switch to the transposed layout, an all-gather
/// (the ending-node LayerNorm and triangle bias need the full transposed
/// tensor), ending-node attention on shards, and a final gather +
/// transpose back.
fn dap_triangle_attention(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    z: Var,
    dap: &dyn AxialCollectives,
) -> Result<Var> {
    let k = dap.ranks();
    let start_p = format!("{prefix}.tri_att_start");
    let end_p = format!("{prefix}.tri_att_end");

    // Starting node: shard along the first residue axis.
    let z_ln = layer_norm(g, store, &format!("{start_p}.ln"), dims.c_z, z)?;
    let bias_rr = Linear::no_bias(format!("{start_p}.tri_bias"), dims.c_z, dims.pair_heads)
        .apply(g, store, z_ln)?;
    let bias = g.permute(bias_rr, &[2, 0, 1])?;
    let ln_shards = dap_scatter(g, z_ln, k)?;
    let z_shards = dap_scatter(g, z, k)?;
    let mut start_out = Vec::with_capacity(k);
    for rank in 0..k {
        let att = gated_axis_attention(
            g,
            store,
            &start_p,
            ln_shards[rank],
            Some(bias),
            dims.c_z,
            dims.pair_heads,
            dims.c_hidden_pair,
            dims.fused,
        )?;
        start_out.push(dropout_residual_ranked(g, dims, &start_p, rank, z_shards[rank], att)?);
    }

    // Switch to the transposed layout, then gather: the ending-node bias
    // is a function of the full transposed pair tensor.
    let end_in = dap_axis_switch(g, dap, &start_out)?; // [R/k, R, c_z], transposed
    let zp = dap_all_gather(g, dap, &end_in)?; // [R, R, c_z], transposed
    let zp_ln = layer_norm(g, store, &format!("{end_p}.ln"), dims.c_z, zp)?;
    let bias2_rr = Linear::no_bias(format!("{end_p}.tri_bias"), dims.c_z, dims.pair_heads)
        .apply(g, store, zp_ln)?;
    let bias2 = g.permute(bias2_rr, &[2, 0, 1])?;
    let ln2_shards = dap_scatter(g, zp_ln, k)?;
    let mut end_out = Vec::with_capacity(k);
    for rank in 0..k {
        let att = gated_axis_attention(
            g,
            store,
            &end_p,
            ln2_shards[rank],
            Some(bias2),
            dims.c_z,
            dims.pair_heads,
            dims.c_hidden_pair,
            dims.fused,
        )?;
        end_out.push(dropout_residual_ranked(g, dims, &end_p, rank, end_in[rank], att)?);
    }
    let zp_out = dap_all_gather(g, dap, &end_out)?;
    g.permute(zp_out, &[1, 0, 2])
}

/// [`dropout_residual`] with a rank-salted seed: each DAP rank draws its
/// own mask, exactly as real per-device dropout would.
fn dropout_residual_ranked(
    g: &mut Graph,
    dims: &BlockDims,
    prefix: &str,
    rank: usize,
    residual: Var,
    update: Var,
) -> Result<Var> {
    let update = if dims.dropout > 0.0 {
        let seed = seed_from(prefix) ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        g.dropout(update, dims.dropout, seed)?
    } else {
        update
    };
    g.add(residual, update)
}

/// A pair-only Evoformer block (modules 5-9), used by the template pair
/// stack which has no MSA track.
///
/// # Errors
///
/// Propagates shape errors from the underlying tensor ops.
pub fn pair_block(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    z: Var,
) -> Result<Var> {
    let z = triangle_multiplication(g, store, dims, &format!("{prefix}.tri_mul_out"), z, true)?;
    let z = triangle_multiplication(g, store, dims, &format!("{prefix}.tri_mul_in"), z, false)?;
    let z = triangle_attention(g, store, dims, &format!("{prefix}.tri_att_start"), z, true)?;
    let z = triangle_attention(g, store, dims, &format!("{prefix}.tri_att_end"), z, false)?;
    transition(g, store, dims.c_z, dims.transition_factor, &format!("{prefix}.pair_trans"), z)
}

/// Shared gated-attention plumbing: projects `x` (`[B1, B2, c_in]`) to
/// per-head Q/K/V/gate, runs fused attention over the second axis with an
/// optional `[h, B2, B2]` bias, gates, and projects back to `c_in`.
#[allow(clippy::too_many_arguments)]
fn gated_axis_attention(
    g: &mut Graph,
    store: &mut ParamStore,
    prefix: &str,
    x: Var,
    bias: Option<Var>,
    c_in: usize,
    heads: usize,
    c_hidden: usize,
    fused: bool,
) -> Result<Var> {
    let hd = heads * c_hidden;
    let q_proj = Linear::no_bias(format!("{prefix}.q"), c_in, hd);
    let k_proj = Linear::no_bias(format!("{prefix}.k"), c_in, hd);
    let v_proj = Linear::no_bias(format!("{prefix}.v"), c_in, hd);
    let gate_proj = Linear::new(format!("{prefix}.gate"), c_in, hd);
    // GEMM batching: the four projections share one bundled GEMM.
    let outs = batched_apply(g, store, &[&q_proj, &k_proj, &v_proj, &gate_proj], x)?;
    let (q, k, v, gate) = (outs[0], outs[1], outs[2], outs[3]);

    let in_dims = g.value(x).dims().to_vec();
    let (b1, b2) = (in_dims[0], in_dims[1]);
    // [B1, B2, h*d] -> [B1, h, B2, d]
    let to_heads = |g: &mut Graph, t: Var| -> Result<Var> {
        let r = g.reshape(t, &[b1, b2, heads, c_hidden])?;
        g.permute(r, &[0, 2, 1, 3])
    };
    let qh = to_heads(g, q)?;
    let kh = to_heads(g, k)?;
    let vh = to_heads(g, v)?;
    let gh = to_heads(g, gate)?;
    let scale = 1.0 / (c_hidden as f32).sqrt();
    let gated = if fused {
        // One kernel: scale + pair bias + online softmax + sigmoid gate,
        // with softmax-backward folded into the attention grad.
        g.attention_fused(qh, kh, vh, bias, None, Some(gh), scale)?
    } else {
        // Composed escape hatch (`--no-fused`): the seed-era op chain,
        // kept for A/B comparison and debugging.
        let att = g.attention(qh, kh, vh, bias, scale)?;
        let gsig = g.sigmoid(gh)?;
        g.mul(gsig, att)?
    };
    let back = g.permute(gated, &[0, 2, 1, 3])?;
    let flat = g.reshape(back, &[b1, b2, hd])?;
    Linear::new(format!("{prefix}.out"), hd, c_in).apply(g, store, flat)
}

/// Applies dropout (when enabled) then the residual connection — AlphaFold
/// drops attention and triangle-update outputs before adding them back.
fn dropout_residual(
    g: &mut Graph,
    dims: &BlockDims,
    prefix: &str,
    residual: Var,
    update: Var,
) -> Result<Var> {
    let update = if dims.dropout > 0.0 {
        g.dropout(update, dims.dropout, seed_from(prefix))?
    } else {
        update
    };
    g.add(residual, update)
}

fn seed_from(prefix: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in prefix.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Module 1: MSA row-wise gated self-attention with pair bias.
pub fn msa_row_attention_with_pair_bias(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    m: Var,
    z: Var,
) -> Result<Var> {
    let m_ln = layer_norm(g, store, &format!("{prefix}.ln_m"), dims.c_m, m)?;
    let z_ln = layer_norm(g, store, &format!("{prefix}.ln_z"), dims.c_z, z)?;
    // Pair bias: [R, R, c_z] -> [R, R, h] -> [h, R, R].
    let bias_rr =
        Linear::no_bias(format!("{prefix}.pair_bias"), dims.c_z, dims.msa_heads)
            .apply(g, store, z_ln)?;
    let bias = g.permute(bias_rr, &[2, 0, 1])?;
    let att = gated_axis_attention(
        g,
        store,
        prefix,
        m_ln,
        Some(bias),
        dims.c_m,
        dims.msa_heads,
        dims.c_hidden_msa,
        dims.fused,
    )?;
    dropout_residual(g, dims, prefix, m, att)
}

/// Module 2: MSA column-wise gated self-attention (attends over sequences).
pub fn msa_column_attention(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    m: Var,
) -> Result<Var> {
    let m_ln = layer_norm(g, store, &format!("{prefix}.ln"), dims.c_m, m)?;
    // Transpose so the attended axis (sequences) is axis 1: [R, S, c_m].
    let mt = g.permute(m_ln, &[1, 0, 2])?;
    let att = gated_axis_attention(
        g,
        store,
        prefix,
        mt,
        None,
        dims.c_m,
        dims.msa_heads,
        dims.c_hidden_msa,
        dims.fused,
    )?;
    let back = g.permute(att, &[1, 0, 2])?;
    g.add(m, back)
}

/// Extra-MSA variant of module 2: **global** column attention (AlphaFold
/// Algorithm 19). One mean-pooled query per column attends over the
/// thousands of extra sequences, so the logits are `O(S)` per column rather
/// than `O(S²)`; each sequence then gates the shared attention output.
pub fn msa_global_column_attention(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    m: Var,
) -> Result<Var> {
    let (s, r) = {
        let d = g.value(m).dims();
        (d[0], d[1])
    };
    let heads = dims.msa_heads;
    let hd = heads * dims.c_hidden_msa;
    let m_ln = layer_norm(g, store, &format!("{prefix}.ln"), dims.c_m, m)?;
    let q_proj = Linear::no_bias(format!("{prefix}.q"), dims.c_m, hd);
    let k_proj = Linear::no_bias(format!("{prefix}.k"), dims.c_m, hd);
    let v_proj = Linear::no_bias(format!("{prefix}.v"), dims.c_m, hd);
    let gate_proj = Linear::new(format!("{prefix}.gate"), dims.c_m, hd);
    let outs = batched_apply(g, store, &[&q_proj, &k_proj, &v_proj, &gate_proj], m_ln)?;
    let (q, k, v, gate) = (outs[0], outs[1], outs[2], outs[3]);

    // Global query: mean over the sequence axis -> one query per column.
    let q_mean = g.mean_axis(q, 0)?; // [R, hd]
    let qh = {
        let r1 = g.reshape(q_mean, &[r, heads, 1, dims.c_hidden_msa])?;
        g.permute(r1, &[0, 2, 1, 3])? // -> [R, 1, heads, d]? need [R, heads, 1, d]
    };
    // Fix layout: [R, hd] -> [R, heads, d] -> [R, heads, 1, d].
    let qh = {
        let _ = qh;
        let r1 = g.reshape(q_mean, &[r, heads, dims.c_hidden_msa])?;
        g.reshape(r1, &[r, heads, 1, dims.c_hidden_msa])?
    };
    // Keys/values: [S, R, hd] -> [R, heads, S, d].
    let to_kv = |g: &mut Graph, t: Var| -> Result<Var> {
        let r4 = g.reshape(t, &[s, r, heads, dims.c_hidden_msa])?;
        g.permute(r4, &[1, 2, 0, 3])
    };
    let kh = to_kv(g, k)?;
    let vh = to_kv(g, v)?;
    let scale = 1.0 / (dims.c_hidden_msa as f32).sqrt();
    let att = g.attention(qh, kh, vh, None, scale)?; // [R, heads, 1, d]
    let att_flat = g.reshape(att, &[r, hd])?;
    // Per-sequence gating of the shared column output.
    let gsig = g.sigmoid(gate)?; // [S, R, hd]
    let gated = g.mul(gsig, att_flat)?; // broadcast over S
    let out = Linear::new(format!("{prefix}.out"), hd, dims.c_m).apply(g, store, gated)?;
    dropout_residual(g, dims, prefix, m, out)
}

/// Modules 3 & 9: the two-layer transition (feed-forward) block,
/// `x + W2 relu(W1 LN(x))`.
pub fn transition(
    g: &mut Graph,
    store: &mut ParamStore,
    c: usize,
    factor: usize,
    prefix: &str,
    x: Var,
) -> Result<Var> {
    let ln = layer_norm(g, store, &format!("{prefix}.ln"), c, x)?;
    let h = Linear::new(format!("{prefix}.fc1"), c, c * factor).apply(g, store, ln)?;
    let a = g.relu(h)?;
    let out = Linear::new(format!("{prefix}.fc2"), c * factor, c).apply(g, store, a)?;
    g.add(x, out)
}

/// Gradient-checkpointed variant of [`transition`]: the segment's
/// intermediate activations (the `factor×`-expanded hidden layer — the
/// largest activations in the block) are not retained; backward re-runs the
/// segment. This is OpenFold's memory workaround that ScaleFold disables
/// once DAP frees enough memory (§4.1).
pub fn transition_checkpointed(
    g: &mut Graph,
    store: &mut ParamStore,
    c: usize,
    factor: usize,
    prefix: &str,
    x: Var,
) -> Result<Var> {
    // Bind all parameters as explicit checkpoint inputs so their gradients
    // flow out of the re-executed segment.
    let gamma =
        g.use_param_or_init(store, &format!("{prefix}.ln.gamma"), || sf_tensor::Tensor::ones(&[c]));
    let beta =
        g.use_param_or_init(store, &format!("{prefix}.ln.beta"), || sf_tensor::Tensor::zeros(&[c]));
    let w1_name = format!("{prefix}.fc1.weight");
    let w1 = g.use_param_or_init(store, &w1_name, {
        let n = w1_name.clone();
        move || sf_tensor::Tensor::lecun_normal(&[c * factor, c], c, fnv(&n))
    });
    let b1 = g.use_param_or_init(store, &format!("{prefix}.fc1.bias"), || {
        sf_tensor::Tensor::zeros(&[c * factor])
    });
    let w2_name = format!("{prefix}.fc2.weight");
    let w2 = g.use_param_or_init(store, &w2_name, {
        let n = w2_name.clone();
        move || sf_tensor::Tensor::lecun_normal(&[c, c * factor], c * factor, fnv(&n))
    });
    let b2 = g.use_param_or_init(store, &format!("{prefix}.fc2.bias"), || {
        sf_tensor::Tensor::zeros(&[c])
    });
    g.checkpoint(&[x, gamma, beta, w1, b1, w2, b2], |sub, ins| {
        let [x, gamma, beta, w1, b1, w2, b2] = *ins else {
            unreachable!("checkpoint passes inputs through unchanged");
        };
        let ln = sub.layer_norm(x, gamma, beta)?;
        let w1t = sub.permute(w1, &[1, 0])?;
        let h0 = sub.matmul(ln, w1t)?;
        let h = sub.add(h0, b1)?;
        let a = sub.relu(h)?;
        let w2t = sub.permute(w2, &[1, 0])?;
        let o0 = sub.matmul(a, w2t)?;
        let o = sub.add(o0, b2)?;
        sub.add(x, o)
    })
}

/// FNV-1a hash used for per-name deterministic initialization (matches
/// `crate::linear`'s seeding so checkpointed and plain transitions
/// initialize identically).
fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Module 4: outer product mean — the MSA→pair communication channel.
/// `o[i,j] = mean_s a[s,i] ⊗ b[s,j]`, projected to `c_z`.
pub fn outer_product_mean(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    m: Var,
    z: Var,
) -> Result<Var> {
    let (s, r) = {
        let d = g.value(m).dims();
        (d[0], d[1])
    };
    let c = dims.c_opm;
    let m_ln = layer_norm(g, store, &format!("{prefix}.ln"), dims.c_m, m)?;
    let a = Linear::new(format!("{prefix}.a"), dims.c_m, c).apply(g, store, m_ln)?;
    let b = Linear::new(format!("{prefix}.b"), dims.c_m, c).apply(g, store, m_ln)?;
    // einsum('sic,sjd->ijcd') via one GEMM: [R*c, S] @ [S, R*c] = [R*c, R*c].
    let a2 = g.reshape(a, &[s, r * c])?;
    let b2 = g.reshape(b, &[s, r * c])?;
    let at = g.permute(a2, &[1, 0])?;
    let big = g.matmul(at, b2)?; // [R*c, R*c]
    let o4 = g.reshape(big, &[r, c, r, c])?;
    let o = g.permute(o4, &[0, 2, 1, 3])?; // [R, R, c, c]
    let flat = g.reshape(o, &[r, r, c * c])?;
    let mean = g.scale(flat, 1.0 / s as f32)?;
    let proj = Linear::new(format!("{prefix}.out"), c * c, dims.c_z).apply(g, store, mean)?;
    g.add(z, proj)
}

/// Modules 5 & 6: triangle multiplicative update.
/// Outgoing: `o[i,j] = Σ_k a[i,k] ⊙ b[j,k]`; incoming: `Σ_k a[k,i] ⊙ b[k,j]`.
pub fn triangle_multiplication(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    z: Var,
    outgoing: bool,
) -> Result<Var> {
    let c = dims.c_hidden_mul;
    let r = g.value(z).dims()[0];
    let z_ln = layer_norm(g, store, &format!("{prefix}.ln_in"), dims.c_z, z)?;
    let gated_proj = |g: &mut Graph, store: &mut ParamStore, which: &str| -> Result<Var> {
        let p = Linear::new(format!("{prefix}.{which}_proj"), dims.c_z, c).apply(g, store, z_ln)?;
        let gt = Linear::new(format!("{prefix}.{which}_gate"), dims.c_z, c).apply(g, store, z_ln)?;
        let sg = g.sigmoid(gt)?;
        g.mul(sg, p)
    };
    let a = gated_proj(g, store, "a")?;
    let b = gated_proj(g, store, "b")?;
    // Channel-major [c, R, R] so each channel is an R×R matrix product.
    let ac = g.permute(a, &[2, 0, 1])?;
    let bc = g.permute(b, &[2, 0, 1])?;
    let prod = if outgoing {
        // einsum('cik,cjk->cij') = A · Bᵀ
        let bt = g.permute(bc, &[0, 2, 1])?;
        g.matmul(ac, bt)?
    } else {
        // einsum('cki,ckj->cij') = Aᵀ · B
        let at = g.permute(ac, &[0, 2, 1])?;
        g.matmul(at, bc)?
    };
    let back = g.permute(prod, &[1, 2, 0])?; // [R, R, c]
    let _ = r;
    let ln_out = layer_norm(g, store, &format!("{prefix}.ln_out"), c, back)?;
    let proj = Linear::new(format!("{prefix}.out"), c, dims.c_z).apply(g, store, ln_out)?;
    let out_gate =
        Linear::new(format!("{prefix}.out_gate"), dims.c_z, dims.c_z).apply(g, store, z_ln)?;
    let og = g.sigmoid(out_gate)?;
    let gated = g.mul(og, proj)?;
    dropout_residual(g, dims, prefix, z, gated)
}

/// Modules 7 & 8: triangle self-attention around the starting / ending node.
pub fn triangle_attention(
    g: &mut Graph,
    store: &mut ParamStore,
    dims: &BlockDims,
    prefix: &str,
    z: Var,
    starting: bool,
) -> Result<Var> {
    // Ending-node attention is starting-node attention on the transposed
    // pair tensor.
    let zin = if starting { z } else { g.permute(z, &[1, 0, 2])? };
    let z_ln = layer_norm(g, store, &format!("{prefix}.ln"), dims.c_z, zin)?;
    // Triangle bias: logits(i; j->k) += linear(z_ln[j,k]).
    let bias_rr = Linear::no_bias(format!("{prefix}.tri_bias"), dims.c_z, dims.pair_heads)
        .apply(g, store, z_ln)?;
    let bias = g.permute(bias_rr, &[2, 0, 1])?;
    let att = gated_axis_attention(
        g,
        store,
        prefix,
        z_ln,
        Some(bias),
        dims.c_z,
        dims.pair_heads,
        dims.c_hidden_pair,
        dims.fused,
    )?;
    let att = if starting { att } else { g.permute(att, &[1, 0, 2])? };
    dropout_residual(g, dims, prefix, z, att)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;
    use sf_tensor::Tensor;

    fn setup() -> (Graph, ParamStore, BlockDims, Var, Var) {
        let cfg = ModelConfig::tiny();
        let dims = BlockDims::main(&cfg);
        let mut g = Graph::new();
        let store = ParamStore::new();
        let m = g.constant(Tensor::randn(&[cfg.n_seq, cfg.n_res, cfg.c_m], 1).mul_scalar(0.3));
        let z = g.constant(Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], 2).mul_scalar(0.3));
        (g, store, dims, m, z)
    }

    #[test]
    fn block_preserves_shapes() {
        let (mut g, mut store, dims, m, z) = setup();
        let m_dims = g.value(m).dims().to_vec();
        let z_dims = g.value(z).dims().to_vec();
        let (m2, z2) = evoformer_block(&mut g, &mut store, &dims, "blk0", m, z, false).unwrap();
        assert_eq!(g.value(m2).dims(), m_dims.as_slice());
        assert_eq!(g.value(z2).dims(), z_dims.as_slice());
        assert!(!g.value(m2).has_non_finite());
        assert!(!g.value(z2).has_non_finite());
    }

    #[test]
    fn block_output_differs_from_input() {
        let (mut g, mut store, dims, m, z) = setup();
        let (m2, z2) = evoformer_block(&mut g, &mut store, &dims, "blk0", m, z, false).unwrap();
        assert!(!g.value(m2).allclose(g.value(m), 1e-6));
        assert!(!g.value(z2).allclose(g.value(z), 1e-6));
    }

    #[test]
    fn gradients_reach_all_block_params() {
        let (mut g, mut store, dims, m, z) = setup();
        let (m2, z2) = evoformer_block(&mut g, &mut store, &dims, "b", m, z, false).unwrap();
        let lm = g.sum_all(m2).unwrap();
        let lz = g.sum_all(z2).unwrap();
        let loss = g.add(lm, lz).unwrap();
        g.backward(loss).unwrap();
        let grads = g.grads_by_name().unwrap();
        // Every registered parameter must receive a gradient entry.
        for name in store.names() {
            assert!(grads.contains_key(&name), "no grad for {name}");
        }
        // And the critical paths must be non-zero.
        assert!(grads["b.msa_row.pair_bias.weight"].norm() > 0.0);
        assert!(grads["b.tri_mul_out.a_proj.weight"].norm() > 0.0);
        assert!(grads["b.opm.out.weight"].norm() > 0.0);
    }

    #[test]
    fn pair_bias_affects_msa_track() {
        // Zeroing z must change the row-attention output (bias path alive).
        let (mut g, mut store, dims, m, z) = setup();
        let out1 =
            msa_row_attention_with_pair_bias(&mut g, &mut store, &dims, "pb", m, z).unwrap();
        let z0 = g.constant(Tensor::zeros(g.value(z).dims()));
        let out2 =
            msa_row_attention_with_pair_bias(&mut g, &mut store, &dims, "pb", m, z0).unwrap();
        assert!(!g.value(out1).allclose(g.value(out2), 1e-7));
    }

    #[test]
    fn triangle_mult_outgoing_vs_incoming_differ() {
        let (mut g, mut store, dims, _m, z) = setup();
        let o = triangle_multiplication(&mut g, &mut store, &dims, "tm", z, true).unwrap();
        let i = triangle_multiplication(&mut g, &mut store, &dims, "tm", z, false).unwrap();
        assert!(!g.value(o).allclose(g.value(i), 1e-7));
    }

    #[test]
    fn outer_product_mean_matches_reference() {
        // Direct check of the einsum('sic,sjd->ijcd')/S rearrangement on a
        // minimal case, against a quadruple loop.
        let (s, r, c_m, c) = (2usize, 3usize, 4usize, 2usize);
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let dims = BlockDims {
            c_m,
            c_z: 3,
            msa_heads: 1,
            pair_heads: 1,
            c_hidden_msa: 2,
            c_hidden_pair: 2,
            c_hidden_mul: 2,
            c_opm: c,
            transition_factor: 2,
            dropout: 0.0,
            fused: true,
        };
        let m0 = Tensor::randn(&[s, r, c_m], 7);
        let z0 = Tensor::zeros(&[r, r, 3]);
        let m = g.constant(m0);
        let z = g.constant(z0);
        let out = outer_product_mean(&mut g, &mut store, &dims, "opm", m, z).unwrap();
        assert_eq!(g.value(out).dims(), &[r, r, 3]);

        // Reference: recompute o from the bound a/b projections, then apply
        // the stored output projection.
        let m_lnv = {
            let mut g2 = Graph::new();
            let mv = g2.constant(g.value(m).clone());
            let ln = layer_norm(&mut g2, &mut store, "opm.ln", c_m, mv).unwrap();
            g2.value(ln).clone()
        };
        let apply_lin = |name: &str, x: &Tensor, out_dim: usize| -> Tensor {
            let w = store.get(&format!("{name}.weight")).unwrap();
            let b = store.get(&format!("{name}.bias")).unwrap();
            let flat = x.reshape(&[s * r, c_m]).unwrap();
            flat.matmul_bt(w)
                .unwrap()
                .add(b)
                .unwrap()
                .reshape(&[s, r, out_dim])
                .unwrap()
        };
        let av = apply_lin("opm.a", &m_lnv, c);
        let bv = apply_lin("opm.b", &m_lnv, c);
        let mut o = Tensor::zeros(&[r, r, c * c]);
        for i in 0..r {
            for j in 0..r {
                for ci in 0..c {
                    for cj in 0..c {
                        let mut acc = 0.0;
                        for si in 0..s {
                            acc += av.at(&[si, i, ci]).unwrap() * bv.at(&[si, j, cj]).unwrap();
                        }
                        o.set(&[i, j, ci * c + cj], acc / s as f32).unwrap();
                    }
                }
            }
        }
        let w = store.get("opm.out.weight").unwrap();
        let bb = store.get("opm.out.bias").unwrap();
        let expect = o
            .reshape(&[r * r, c * c])
            .unwrap()
            .matmul_bt(w)
            .unwrap()
            .add(bb)
            .unwrap()
            .reshape(&[r, r, 3])
            .unwrap();
        assert!(g.value(out).allclose(&expect, 1e-4));
    }

    #[test]
    fn global_column_attention_shapes_and_grads() {
        let cfg = ModelConfig::tiny();
        let dims = BlockDims::extra(&cfg);
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let m = g.constant(
            Tensor::randn(&[cfg.n_extra_seq, cfg.n_res, cfg.c_e], 41).mul_scalar(0.3),
        );
        let out = msa_global_column_attention(&mut g, &mut store, &dims, "gc", m).unwrap();
        assert_eq!(g.value(out).dims(), &[cfg.n_extra_seq, cfg.n_res, cfg.c_e]);
        assert!(!g.value(out).has_non_finite());
        let loss = g.sum_all(out).unwrap();
        g.backward(loss).unwrap();
        let grads = g.grads_by_name().unwrap();
        for name in store.names() {
            assert!(grads.contains_key(&name), "no grad for {name}");
        }
    }

    #[test]
    fn global_column_attention_is_cheaper_than_full() {
        // The point of the global variant: tape activation bytes scale O(S)
        // for the logits instead of O(S^2).
        let mut cfg = ModelConfig::tiny();
        cfg.n_extra_seq = 32; // exaggerate the sequence axis
        let dims = BlockDims::extra(&cfg);
        let m0 = Tensor::randn(&[cfg.n_extra_seq, cfg.n_res, cfg.c_e], 42).mul_scalar(0.3);

        let mut g1 = Graph::new();
        let mut store = ParamStore::new();
        let m1 = g1.constant(m0.clone());
        let _ = msa_global_column_attention(&mut g1, &mut store, &dims, "gc", m1).unwrap();

        let mut g2 = Graph::new();
        let m2 = g2.constant(m0);
        let _ = msa_column_attention(&mut g2, &mut store, &dims, "fc", m2).unwrap();
        assert!(
            g1.activation_bytes() < g2.activation_bytes(),
            "global {} vs full {}",
            g1.activation_bytes(),
            g2.activation_bytes()
        );
    }

    #[test]
    fn dropout_changes_outputs_but_preserves_shapes() {
        let cfg = ModelConfig::tiny();
        let mut dims = BlockDims::main(&cfg);
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let m = g.constant(Tensor::randn(&[cfg.n_seq, cfg.n_res, cfg.c_m], 31).mul_scalar(0.3));
        let z = g.constant(Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], 32).mul_scalar(0.3));
        let (m_dry, z_dry) = evoformer_block(&mut g, &mut store, &dims, "d", m, z, false).unwrap();
        dims.dropout = 0.3;
        let (m_wet, z_wet) = evoformer_block(&mut g, &mut store, &dims, "d", m, z, false).unwrap();
        assert_eq!(g.value(m_wet).dims(), g.value(m_dry).dims());
        assert!(!g.value(m_wet).allclose(g.value(m_dry), 1e-7));
        assert!(!g.value(z_wet).allclose(g.value(z_dry), 1e-7));
        assert!(!g.value(m_wet).has_non_finite());
    }

    #[test]
    fn dap_block_matches_unsharded_bitwise() {
        // With dropout off, the DAP block must reproduce the unsharded
        // block exactly (forward values), for every rank count dividing
        // both axes, fused and composed attention alike.
        for fused in [true, false] {
            let cfg = ModelConfig::tiny();
            let mut dims = BlockDims::main(&cfg);
            dims.fused = fused;
            let m0 = Tensor::randn(&[cfg.n_seq, cfg.n_res, cfg.c_m], 5).mul_scalar(0.3);
            let z0 = Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], 6).mul_scalar(0.3);

            let mut g_ref = Graph::new();
            let mut store = ParamStore::new();
            let m = g_ref.constant(m0.clone());
            let z = g_ref.constant(z0.clone());
            let (mr, zr) =
                evoformer_block(&mut g_ref, &mut store, &dims, "blk", m, z, false).unwrap();
            let (m_ref, z_ref) = (g_ref.value(mr).clone(), g_ref.value(zr).clone());

            for k in [1usize, 2, 4] {
                let mut g = Graph::new();
                let mut store_k = ParamStore::new();
                let m = g.constant(m0.clone());
                let z = g.constant(z0.clone());
                let dap = crate::dap::LocalAxial(k);
                let (mk, zk) =
                    evoformer_block_dap(&mut g, &mut store_k, &dims, "blk", m, z, false, &dap)
                        .unwrap();
                assert_eq!(
                    g.value(mk).data(),
                    m_ref.data(),
                    "fused={fused} k={k}: MSA track diverged"
                );
                assert_eq!(
                    g.value(zk).data(),
                    z_ref.data(),
                    "fused={fused} k={k}: pair track diverged"
                );
            }
        }
    }

    #[test]
    fn dap_block_gradients_match_unsharded() {
        // Weight gradients accumulate per-rank (summed by name), so they
        // match the unsharded single-GEMM reduction to fp tolerance.
        let cfg = ModelConfig::tiny();
        let dims = BlockDims::main(&cfg);
        let m0 = Tensor::randn(&[cfg.n_seq, cfg.n_res, cfg.c_m], 8).mul_scalar(0.3);
        let z0 = Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], 9).mul_scalar(0.3);

        let run = |k: Option<usize>| {
            let mut g = Graph::new();
            let mut store = ParamStore::new();
            let m = g.constant(m0.clone());
            let z = g.constant(z0.clone());
            let (m2, z2) = match k {
                None => evoformer_block(&mut g, &mut store, &dims, "b", m, z, false).unwrap(),
                Some(k) => {
                    let dap = crate::dap::LocalAxial(k);
                    evoformer_block_dap(&mut g, &mut store, &dims, "b", m, z, false, &dap)
                        .unwrap()
                }
            };
            // O(1)-scale loss (like the real training losses) so the 1e-5
            // equivalence tolerance is meaningful.
            let lm = g.mean_all(m2).unwrap();
            let lz = g.mean_all(z2).unwrap();
            let loss = g.add(lm, lz).unwrap();
            g.backward(loss).unwrap();
            g.grads_by_name().unwrap()
        };
        let g_ref = run(None);
        for k in [1usize, 2, 4] {
            let g_k = run(Some(k));
            assert_eq!(g_ref.len(), g_k.len(), "k={k}: parameter set differs");
            for (name, gr) in &g_ref {
                // Elementwise |a-b| <= 1e-5 (+relative): the contract's
                // tolerance. Differences come only from per-rank gradient
                // accumulation order (and pure-cancellation residues like
                // the pair-bias LN beta, whose true gradient is ~0 since a
                // uniform logit shift leaves softmax invariant).
                assert!(
                    gr.allclose(&g_k[name], 1e-5),
                    "k={k}: gradient mismatch at {name}"
                );
            }
        }
    }

    #[test]
    fn pair_block_runs() {
        let cfg = ModelConfig::tiny();
        let dims = BlockDims::template(&cfg);
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let z = g.constant(Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_t], 9).mul_scalar(0.2));
        let z2 = pair_block(&mut g, &mut store, &dims, "tpl", z).unwrap();
        assert_eq!(g.value(z2).dims(), g.value(z).dims());
        assert!(!g.value(z2).has_non_finite());
    }
}
