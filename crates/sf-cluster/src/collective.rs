//! Functional collectives: the *algorithms* behind the simulator's cost
//! model, implemented for real on in-memory buffers.
//!
//! The cluster simulator prices collectives analytically; this module runs
//! them. [`ring_all_reduce`] is the actual two-phase ring algorithm
//! (reduce-scatter then all-gather over `n-1` steps each) used by NCCL,
//! operating on per-rank buffers — it powers the real data-parallel
//! trainer in the `scalefold` crate and verifies that the `2(n-1)/n`
//! traffic factor in [`crate::FabricSpec::all_reduce_s`] corresponds to a
//! real schedule.

use sf_tensor::Tensor;

/// Statistics of one collective execution (validates the analytic model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectiveStats {
    /// Total elements sent across all ranks and steps.
    pub elements_sent: usize,
    /// Communication steps (latency terms) per rank.
    pub steps: usize,
}

/// In-place **mean** all-reduce over per-rank buffers using the two-phase
/// ring algorithm. After the call every buffer holds the elementwise mean
/// of all inputs.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn ring_all_reduce(buffers: &mut [Vec<f32>]) -> CollectiveStats {
    let n = buffers.len();
    if n <= 1 {
        return CollectiveStats::default();
    }
    let len = buffers[0].len();
    for b in buffers.iter() {
        assert_eq!(b.len(), len, "all-reduce buffers must match in length");
    }
    if len == 0 {
        return CollectiveStats::default();
    }

    // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
    let starts: Vec<usize> = (0..=n).map(|c| c * len / n).collect();
    let mut sent = 0usize;

    // Phase 1: reduce-scatter. After n-1 steps, rank r holds the full sum
    // of chunk (r+1) mod n.
    for step in 0..n - 1 {
        for rank in 0..n {
            // Rank sends chunk (rank - step) to rank+1, which accumulates.
            let chunk = (rank + n - step) % n;
            let (lo, hi) = (starts[chunk], starts[chunk + 1]);
            let dst = (rank + 1) % n;
            // Split-borrow the two ranks' buffers.
            let (src_buf, dst_buf) = two_mut(buffers, rank, dst);
            for i in lo..hi {
                dst_buf[i] += src_buf[i];
            }
            sent += hi - lo;
        }
    }
    // Phase 2: all-gather the reduced chunks around the ring.
    for step in 0..n - 1 {
        for rank in 0..n {
            // Rank holds the fully-reduced chunk (rank + 1 - step); pass it on.
            let chunk = (rank + 1 + n - step) % n;
            let (lo, hi) = (starts[chunk], starts[chunk + 1]);
            let dst = (rank + 1) % n;
            let (src_buf, dst_buf) = two_mut(buffers, rank, dst);
            dst_buf[lo..hi].copy_from_slice(&src_buf[lo..hi]);
            sent += hi - lo;
        }
    }
    // Mean.
    let inv = 1.0 / n as f32;
    for b in buffers.iter_mut() {
        for x in b.iter_mut() {
            *x *= inv;
        }
    }
    CollectiveStats {
        elements_sent: sent,
        steps: 2 * (n - 1),
    }
}

/// Ring all-gather: every rank ends with the concatenation of all shards
/// (in rank order). Runs the actual `n-1`-step ring schedule — each step,
/// every rank forwards the shard it received last step to its neighbour —
/// so [`CollectiveStats::elements_sent`] is exactly `n(n-1)·shard_len`,
/// the `(n-1)` traffic factor priced by
/// [`crate::FabricSpec::all_gather_s`].
///
/// # Panics
///
/// Panics if shards differ in length.
pub fn all_gather(shards: &[Vec<f32>]) -> (Vec<Vec<f32>>, CollectiveStats) {
    let n = shards.len();
    if n == 0 {
        return (Vec::new(), CollectiveStats::default());
    }
    let len = shards[0].len();
    for s in shards {
        assert_eq!(s.len(), len, "all-gather shards must match in length");
    }
    let mut out: Vec<Vec<f32>> = vec![vec![0.0; n * len]; n];
    for (r, s) in shards.iter().enumerate() {
        out[r][r * len..(r + 1) * len].copy_from_slice(s);
    }
    if n == 1 || len == 0 {
        return (out, CollectiveStats::default());
    }
    let mut sent = 0usize;
    for step in 0..n - 1 {
        for rank in 0..n {
            // Rank forwards shard (rank - step): its own shard on step 0,
            // then whatever arrived from its predecessor.
            let c = (rank + n - step) % n;
            let dst = (rank + 1) % n;
            let (src_buf, dst_buf) = two_mut(&mut out, rank, dst);
            dst_buf[c * len..(c + 1) * len].copy_from_slice(&src_buf[c * len..(c + 1) * len]);
            sent += len;
        }
    }
    (
        out,
        CollectiveStats {
            elements_sent: sent,
            steps: n - 1,
        },
    )
}

/// All-to-all: rank `r`'s output chunk `c` is rank `c`'s input chunk `r`
/// (the DAP axis-switch primitive). Chunk boundaries are the same
/// `c·len/n` split used by [`ring_all_reduce`], so buffers whose length is
/// not divisible by `n` exchange slightly uneven chunks instead of
/// panicking. A rank's own chunk never crosses the wire, so
/// `elements_sent` is exactly `(n-1)·len` — the `(n-1)/n` per-rank factor
/// priced by [`crate::FabricSpec::all_to_all_s`].
///
/// # Panics
///
/// Panics if the per-rank buffers differ in length.
pub fn all_to_all(inputs: &[Vec<f32>]) -> (Vec<Vec<f32>>, CollectiveStats) {
    let n = inputs.len();
    if n == 0 {
        return (Vec::new(), CollectiveStats::default());
    }
    let len = inputs[0].len();
    for b in inputs {
        assert_eq!(b.len(), len, "all-to-all buffers must match in length");
    }
    let starts: Vec<usize> = (0..=n).map(|c| c * len / n).collect();
    let mut sent = 0usize;
    let out = (0..n)
        .map(|r| {
            let mut buf = Vec::with_capacity(len);
            for (c, input) in inputs.iter().enumerate() {
                buf.extend_from_slice(&input[starts[r]..starts[r + 1]]);
                if c != r {
                    sent += starts[r + 1] - starts[r];
                }
            }
            buf
        })
        .collect();
    (
        out,
        CollectiveStats {
            elements_sent: sent,
            steps: n.saturating_sub(1),
        },
    )
}

/// Mean all-reduce over per-rank *tensors* (gradient averaging for data
/// parallelism): flattens, ring-reduces, restores shapes.
///
/// # Panics
///
/// Panics if the tensors' shapes differ across ranks.
pub fn all_reduce_tensors(tensors: &mut [Tensor]) -> CollectiveStats {
    if tensors.len() <= 1 {
        return CollectiveStats::default();
    }
    let dims = tensors[0].dims().to_vec();
    for t in tensors.iter() {
        assert_eq!(t.dims(), dims.as_slice(), "rank tensors must match shapes");
    }
    let mut buffers: Vec<Vec<f32>> = tensors.iter().map(|t| t.data().to_vec()).collect();
    let stats = ring_all_reduce(&mut buffers);
    for (t, b) in tensors.iter_mut().zip(buffers) {
        t.data_mut().copy_from_slice(&b);
    }
    stats
}

/// Splits a tensor into `ranks` equal shards along axis 0 (the DAP
/// scatter). Rows are contiguous in row-major layout, so each shard is a
/// straight copy of a sub-range of the data.
///
/// # Panics
///
/// Panics if the tensor is 0-dimensional or `dims[0]` is not divisible by
/// `ranks`.
pub fn shard_axis0(t: &Tensor, ranks: usize) -> Vec<Tensor> {
    let dims = t.dims();
    assert!(!dims.is_empty(), "cannot shard a scalar");
    assert!(
        ranks > 0 && dims[0].is_multiple_of(ranks),
        "axis 0 ({}) not divisible by {ranks} ranks",
        dims[0]
    );
    let rows = dims[0] / ranks;
    let stride: usize = dims[1..].iter().product();
    let mut shard_dims = dims.to_vec();
    shard_dims[0] = rows;
    (0..ranks)
        .map(|r| {
            let data = t.data()[r * rows * stride..(r + 1) * rows * stride].to_vec();
            Tensor::from_vec(data, &shard_dims).expect("shard dims match data")
        })
        .collect()
}

/// Concatenates axis-0 shards back into the full tensor (the inverse of
/// [`shard_axis0`]; what a rank's output looks like after an all-gather).
///
/// # Panics
///
/// Panics if `shards` is empty or the shards' shapes disagree.
pub fn unshard_axis0(shards: &[Tensor]) -> Tensor {
    assert!(!shards.is_empty(), "cannot unshard zero shards");
    let dims = shards[0].dims().to_vec();
    let mut data = Vec::with_capacity(shards[0].len() * shards.len());
    for s in shards {
        assert_eq!(s.dims(), dims.as_slice(), "shard shapes must match");
        data.extend_from_slice(s.data());
    }
    let mut full_dims = dims;
    full_dims[0] *= shards.len();
    Tensor::from_vec(data, &full_dims).expect("unshard dims match data")
}

fn two_mut<T>(slice: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = slice.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean(buffers: &[Vec<f32>]) -> Vec<f32> {
        let n = buffers.len();
        let len = buffers[0].len();
        let mut out = vec![0.0f32; len];
        for b in buffers {
            for (o, x) in out.iter_mut().zip(b.iter()) {
                *o += x;
            }
        }
        for o in &mut out {
            *o /= n as f32;
        }
        out
    }

    #[test]
    fn ring_all_reduce_equals_naive_mean() {
        for n in [2usize, 3, 4, 7, 8] {
            for len in [1usize, 5, 16, 33] {
                let mut buffers: Vec<Vec<f32>> = (0..n)
                    .map(|r| (0..len).map(|i| (r * 31 + i) as f32 * 0.5 - 3.0).collect())
                    .collect();
                let expect = naive_mean(&buffers);
                ring_all_reduce(&mut buffers);
                for (r, b) in buffers.iter().enumerate() {
                    for (i, (&got, &want)) in b.iter().zip(expect.iter()).enumerate() {
                        assert!(
                            (got - want).abs() < 1e-4,
                            "n={n} len={len} rank {r} idx {i}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_traffic_matches_analytic_factor() {
        // The analytic model prices 2(n-1)/n x bytes per rank; the real
        // ring sends exactly that (in elements, summed over ranks).
        let n = 8usize;
        let len = 64usize;
        let mut buffers = vec![vec![1.0f32; len]; n];
        let stats = ring_all_reduce(&mut buffers);
        let per_rank = stats.elements_sent as f64 / n as f64;
        let analytic = 2.0 * (n as f64 - 1.0) / n as f64 * len as f64;
        assert!(
            (per_rank - analytic).abs() <= 2.0 * n as f64,
            "per-rank {per_rank} vs analytic {analytic}"
        );
        assert_eq!(stats.steps, 2 * (n - 1));
    }

    #[test]
    fn single_rank_is_identity() {
        let mut buffers = vec![vec![1.0, 2.0, 3.0]];
        let stats = ring_all_reduce(&mut buffers);
        assert_eq!(buffers[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(stats.elements_sent, 0);
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let shards = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let (out, stats) = all_gather(&shards);
        assert_eq!(out.len(), 3);
        for o in &out {
            assert_eq!(o, &vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        }
        // Ring schedule: n(n-1) shard-sized sends over n-1 steps.
        assert_eq!(stats.elements_sent, 3 * 2 * 2);
        assert_eq!(stats.steps, 2);
    }

    #[test]
    fn all_to_all_is_a_transpose() {
        // 2 ranks, chunks of 2.
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let (out, stats) = all_to_all(&inputs);
        assert_eq!(out[0], vec![1.0, 2.0, 5.0, 6.0]);
        assert_eq!(out[1], vec![3.0, 4.0, 7.0, 8.0]);
        // Own chunks stay local: (n-1)/n of the total volume moves.
        assert_eq!(stats.elements_sent, 4);
        // Applying it twice restores the input.
        let (back, _) = all_to_all(&out);
        assert_eq!(back, inputs);
    }

    #[test]
    fn all_to_all_handles_uneven_chunks() {
        // len 5 over 3 ranks: boundaries 0,1,3,5 (the c*len/n split).
        let inputs: Vec<Vec<f32>> = (0..3)
            .map(|r| (0..5).map(|i| (10 * r + i) as f32).collect())
            .collect();
        let (out, stats) = all_to_all(&inputs);
        assert_eq!(out[0], vec![0.0, 10.0, 20.0]); // chunk [0,1) of each rank
        assert_eq!(out[1], vec![1.0, 2.0, 11.0, 12.0, 21.0, 22.0]);
        assert_eq!(out[2], vec![3.0, 4.0, 13.0, 14.0, 23.0, 24.0]);
        // Everything except own chunks crosses the wire: (n-1)*len.
        assert_eq!(stats.elements_sent, 2 * 5);
    }

    #[test]
    fn shard_unshard_round_trip() {
        let t = Tensor::randn(&[6, 3, 2], 42);
        let shards = shard_axis0(&t, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].dims(), &[2, 3, 2]);
        let back = unshard_axis0(&shards);
        assert_eq!(back.dims(), t.dims());
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn all_reduce_tensors_averages() {
        let mut ts = vec![
            Tensor::from_vec(vec![1.0, 2.0], &[2]).expect("sized"),
            Tensor::from_vec(vec![3.0, 6.0], &[2]).expect("sized"),
        ];
        all_reduce_tensors(&mut ts);
        assert_eq!(ts[0].data(), &[2.0, 4.0]);
        assert_eq!(ts[1].data(), &[2.0, 4.0]);
    }
}
