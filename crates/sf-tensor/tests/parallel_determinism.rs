//! Bit-identity of the parallel CPU backend: every kernel routed through
//! `sf_tensor::pool` must produce *byte-for-byte* the same output at any
//! thread count. The partitioning only splits independent output regions
//! and never changes any per-element accumulation order, so `data()` must
//! match exactly — `allclose` would hide a reduction-order regression.
//!
//! The tests deliberately mutate the global thread count while other tests
//! in this binary run concurrently; that is safe *because* of the property
//! under test (results do not depend on the momentary thread count).

use proptest::prelude::*;
use sf_tensor::ops::{attention, layernorm, softmax};
use sf_tensor::pool;
use sf_tensor::Tensor;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` once per thread count and asserts all results are bit-identical,
/// returning the first. Restores the previous thread count afterwards.
fn identical_across_threads<F: Fn() -> Tensor>(f: F) -> Tensor {
    let prev = pool::num_threads();
    let reference = {
        pool::set_num_threads(THREAD_COUNTS[0]);
        f()
    };
    for &n in &THREAD_COUNTS[1..] {
        pool::set_num_threads(n);
        let out = f();
        assert_eq!(
            reference.data(),
            out.data(),
            "output at {n} threads diverged from 1-thread run"
        );
    }
    pool::set_num_threads(prev);
    reference
}

// --- Fixed large shapes: big enough to clear the serial-bypass threshold
// --- so the pool genuinely partitions the work.

#[test]
fn large_matmul_is_bit_identical() {
    let a = Tensor::randn(&[4, 96, 64], 1);
    let b = Tensor::randn(&[4, 64, 96], 2);
    identical_across_threads(|| a.matmul(&b).unwrap());
}

#[test]
fn large_matmul_bt_and_at_are_bit_identical() {
    let a = Tensor::randn(&[4, 96, 64], 3);
    let b = Tensor::randn(&[4, 96, 64], 4);
    identical_across_threads(|| a.matmul_bt(&b).unwrap());
    // matmul_at computes a^T @ c, so c shares a's row count (96).
    let c = Tensor::randn(&[4, 96, 48], 5);
    identical_across_threads(|| a.matmul_at(&c).unwrap());
}

#[test]
fn large_layernorm_forward_and_backward_are_bit_identical() {
    let x = Tensor::randn(&[2048, 64], 6);
    let gamma = Tensor::randn(&[64], 7).add_scalar(1.0);
    let beta = Tensor::randn(&[64], 8);
    let dy = Tensor::randn(&[2048, 64], 9);

    let y = identical_across_threads(|| {
        layernorm::fused_forward(&x, &gamma, &beta, layernorm::LN_EPS)
            .unwrap()
            .0
    });
    // Backward returns three tensors; check each through its own closure.
    let (_, stats) = layernorm::fused_forward(&x, &gamma, &beta, layernorm::LN_EPS).unwrap();
    for idx in 0..3 {
        identical_across_threads(|| {
            let (dx, dg, db) = layernorm::fused_backward(&dy, &x, &gamma, &stats, 64).unwrap();
            [dx, dg, db][idx].clone()
        });
    }
    assert_eq!(y.dims(), x.dims());
}

#[test]
fn large_softmax_is_bit_identical() {
    let x = Tensor::randn(&[64, 64, 64], 10);
    identical_across_threads(|| softmax::softmax(&x).unwrap());
}

#[test]
fn large_attention_is_bit_identical() {
    let q = Tensor::randn(&[4, 4, 64, 16], 11);
    let k = Tensor::randn(&[4, 4, 64, 16], 12);
    let v = Tensor::randn(&[4, 4, 64, 16], 13);
    let bias = Tensor::randn(&[4, 64, 64], 14);
    let scale = 0.25;
    identical_across_threads(|| {
        attention::flash_attention(&q, &k, &v, Some(&bias), scale).unwrap()
    });
    identical_across_threads(|| attention::flash_attention(&q, &k, &v, None, scale).unwrap());
}

#[test]
fn large_fused_attention_forward_and_backward_are_bit_identical() {
    let q = Tensor::randn(&[4, 4, 64, 16], 15);
    let k = Tensor::randn(&[4, 4, 64, 16], 16);
    let v = Tensor::randn(&[4, 4, 64, 16], 17);
    let bias = Tensor::randn(&[4, 64, 64], 18);
    let gate = Tensor::randn(&[4, 4, 64, 16], 19);
    let mask = Tensor::randn(&[4, 64, 64], 20).map(|x| if x > -0.5 { 1.0 } else { 0.0 });
    let scale = 0.25;

    let fused = identical_across_threads(|| {
        attention::attention_fused(&q, &k, &v, Some(&bias), Some(&mask), Some(&gate), scale)
            .unwrap()
            .out
    });

    let fa =
        attention::attention_fused(&q, &k, &v, Some(&bias), Some(&mask), Some(&gate), scale)
            .unwrap();
    let dy = Tensor::randn(fused.dims(), 21);
    for idx in 0..5 {
        identical_across_threads(|| {
            let g = attention::attention_fused_backward(
                &q,
                &k,
                &v,
                Some(&bias),
                Some(&mask),
                Some(&gate),
                fa.pre_gate(),
                &fa.lse,
                scale,
                &dy,
            )
            .unwrap();
            [g.dq, g.dk, g.dv, g.dbias.unwrap(), g.dgate.unwrap()][idx].clone()
        });
    }
}

// --- Random shapes: the same property over the full shape space,
// --- including the serial-bypass path, batch broadcast, and 1-D promotion.

fn dim() -> impl Strategy<Value = usize> {
    1usize..12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_bit_identical_any_shape(
        (b, m, k, n, seed) in (1usize..4, dim(), dim(), dim(), any::<u64>())
    ) {
        let a = Tensor::randn(&[b, m, k], seed);
        let bt = Tensor::randn(&[b, k, n], seed ^ 1);
        identical_across_threads(|| a.matmul(&bt).unwrap());
    }

    #[test]
    fn matmul_broadcast_rhs_bit_identical(
        (b, m, k, n, seed) in (2usize..5, dim(), dim(), dim(), any::<u64>())
    ) {
        // Batched LHS against an unbatched RHS: the broadcast path.
        let a = Tensor::randn(&[b, m, k], seed);
        let w = Tensor::randn(&[k, n], seed ^ 2);
        identical_across_threads(|| a.matmul(&w).unwrap());
    }

    #[test]
    fn matmul_1d_promotion_bit_identical(
        (k, n, seed) in (dim(), dim(), any::<u64>())
    ) {
        // Vector @ matrix and matrix @ vector both promote to 2-D inside.
        let vk = Tensor::randn(&[k], seed);
        let w = Tensor::randn(&[k, n], seed ^ 3);
        identical_across_threads(|| vk.matmul(&w).unwrap());
        let vn = Tensor::randn(&[n], seed ^ 4);
        identical_across_threads(|| w.matmul(&vn).unwrap());
    }

    #[test]
    fn layernorm_bit_identical_any_shape(
        (rows, inner, seed) in (1usize..32, 2usize..48, any::<u64>())
    ) {
        let x = Tensor::randn(&[rows, inner], seed).mul_scalar(2.0);
        let gamma = Tensor::randn(&[inner], seed ^ 5).add_scalar(1.0);
        let beta = Tensor::randn(&[inner], seed ^ 6);
        identical_across_threads(|| {
            layernorm::fused_forward(&x, &gamma, &beta, layernorm::LN_EPS).unwrap().0
        });
    }

    #[test]
    fn softmax_bit_identical_any_shape(
        (rows, inner, seed) in (1usize..32, 1usize..48, any::<u64>())
    ) {
        let x = Tensor::randn(&[rows, inner], seed);
        identical_across_threads(|| softmax::softmax(&x).unwrap());
    }

    #[test]
    fn attention_bit_identical_any_shape(
        (b, h, s, d, seed, with_bias) in
            (1usize..3, 1usize..3, 1usize..24, 1usize..10, any::<u64>(), any::<bool>())
    ) {
        let q = Tensor::randn(&[b, h, s, d], seed);
        let k = Tensor::randn(&[b, h, s, d], seed ^ 7);
        let v = Tensor::randn(&[b, h, s, d], seed ^ 8);
        let bias = Tensor::randn(&[h, s, s], seed ^ 9);
        let scale = 1.0 / (d as f32).sqrt();
        let bias_ref = if with_bias { Some(&bias) } else { None };
        let out = identical_across_threads(|| {
            attention::flash_attention(&q, &k, &v, bias_ref, scale).unwrap()
        });
        // And the parallel kernel still agrees with the naive reference.
        let naive = attention::naive_attention(&q, &k, &v, bias_ref, scale).unwrap();
        prop_assert!(out.allclose(&naive, 1e-3));
    }

    #[test]
    fn fused_attention_bit_identical_any_shape(
        (b, h, s, d, seed, with_bias, with_mask, with_gate) in
            (1usize..3, 1usize..3, 1usize..16, 1usize..8, any::<u64>(),
             any::<bool>(), any::<bool>(), any::<bool>())
    ) {
        let q = Tensor::randn(&[b, h, s, d], seed);
        let k = Tensor::randn(&[b, h, s, d], seed ^ 7);
        let v = Tensor::randn(&[b, h, s, d], seed ^ 8);
        let bias = Tensor::randn(&[h, s, s], seed ^ 9);
        let gate = Tensor::randn(&[b, h, s, d], seed ^ 10);
        let mask = Tensor::randn(&[h, s, s], seed ^ 11)
            .map(|x| if x > -0.5 { 1.0 } else { 0.0 });
        let scale = 1.0 / (d as f32).sqrt();
        let bias_ref = if with_bias { Some(&bias) } else { None };
        let mask_ref = if with_mask { Some(&mask) } else { None };
        let gate_ref = if with_gate { Some(&gate) } else { None };

        let out = identical_across_threads(|| {
            attention::attention_fused(&q, &k, &v, bias_ref, mask_ref, gate_ref, scale)
                .unwrap()
                .out
        });

        let fa = attention::attention_fused(&q, &k, &v, bias_ref, mask_ref, gate_ref, scale)
            .unwrap();
        let dy = Tensor::randn(out.dims(), seed ^ 12);
        // One closure per returned gradient: the closure contract is a
        // single tensor, and tiny shapes keep the repeats cheap.
        for idx in 0..3 {
            identical_across_threads(|| {
                let g = attention::attention_fused_backward(
                    &q, &k, &v, bias_ref, mask_ref, gate_ref,
                    fa.pre_gate(), &fa.lse, scale, &dy,
                )
                .unwrap();
                [g.dq, g.dk, g.dv][idx].clone()
            });
        }
        if with_bias {
            identical_across_threads(|| {
                attention::attention_fused_backward(
                    &q, &k, &v, bias_ref, mask_ref, gate_ref,
                    fa.pre_gate(), &fa.lse, scale, &dy,
                )
                .unwrap()
                .dbias
                .unwrap()
            });
        }
        if with_gate {
            identical_across_threads(|| {
                attention::attention_fused_backward(
                    &q, &k, &v, bias_ref, mask_ref, gate_ref,
                    fa.pre_gate(), &fa.lse, scale, &dy,
                )
                .unwrap()
                .dgate
                .unwrap()
            });
        }
    }
}
