//! Property tests for the operator graph: conservation laws of the fusion
//! passes, DAP sharding linearity, and memory-model monotonicity — for
//! arbitrary model dimensions.

use proptest::prelude::*;
use sf_gpusim::{CpuModel, DeviceSpec};
use sf_model::ModelConfig;
use sf_opgraph::builder::StepGraph;
use sf_opgraph::profile::step_time;
use sf_opgraph::{dap, fusion, memory};

/// Arbitrary miniature model configurations (kept small so graph builds
/// stay fast inside proptest).
fn arb_config() -> impl Strategy<Value = ModelConfig> {
    (
        2usize..24,  // n_res
        2usize..8,   // n_seq
        1usize..4,   // evoformer blocks
        1usize..3,   // msa heads
        4usize..32,  // c_m
        4usize..32,  // c_z
    )
        .prop_map(|(n_res, n_seq, blocks, heads, c_m, c_z)| {
            let mut cfg = ModelConfig::tiny();
            cfg.n_res = n_res;
            cfg.n_seq = n_seq;
            cfg.evoformer_blocks = blocks;
            cfg.msa_heads = heads;
            cfg.pair_heads = heads;
            cfg.c_m = c_m;
            cfg.c_z = c_z;
            cfg
        })
}

fn total_flops(g: &StepGraph) -> f64 {
    g.ops.iter().map(|o| o.kernel.flops).sum()
}

fn total_bytes(g: &StepGraph) -> f64 {
    g.ops.iter().map(|o| o.kernel.bytes).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every fusion pass conserves FLOPs exactly and never increases
    /// traffic, for arbitrary model dimensions.
    #[test]
    fn fusions_conserve_flops_and_reduce_bytes(cfg in arb_config()) {
        let g = StepGraph::reference(&cfg, 0);
        type Pass = Box<dyn Fn(&StepGraph) -> StepGraph>;
        let passes: Vec<(&str, Pass)> = vec![
            ("ln", Box::new(|g: &StepGraph| fusion::fuse_layer_norm(g).0)),
            ("mha", Box::new(|g: &StepGraph| fusion::fuse_mha(g).0)),
            ("gemm", Box::new(|g: &StepGraph| fusion::batch_gemms(g).0)),
            ("compile", Box::new(|g: &StepGraph| fusion::auto_fuse_elementwise(g).0)),
        ];
        for (name, pass) in passes {
            let f = pass(&g);
            prop_assert!(
                (total_flops(&f) - total_flops(&g)).abs() <= 1e-6 * total_flops(&g).max(1.0),
                "{name} changed FLOPs"
            );
            prop_assert!(
                total_bytes(&f) <= total_bytes(&g) * 1.0001,
                "{name} increased traffic"
            );
            prop_assert!(f.ops.len() <= g.ops.len(), "{name} grew the graph");
        }
    }

    /// DAP sharding divides shardable traffic by exactly n and leaves the
    /// total op count unchanged.
    #[test]
    fn dap_sharding_linear(cfg in arb_config(), n in 2usize..9) {
        let g = StepGraph::reference(&cfg, 0);
        let s = dap::shard(&g, n);
        prop_assert_eq!(s.ops.len(), g.ops.len());
        for (a, b) in g.ops.iter().zip(s.ops.iter()) {
            if a.module.dap_shardable() {
                prop_assert!((b.kernel.bytes - a.kernel.bytes / n as f64).abs() < 1e-6);
                prop_assert!((b.kernel.flops - a.kernel.flops / n as f64).abs() < 1e-6);
            } else {
                prop_assert_eq!(a.kernel.bytes, b.kernel.bytes);
            }
        }
    }

    /// Step time is monotone: sharded graphs never take longer in pure
    /// GPU-busy terms, and CUDA-graph mode never exceeds eager.
    #[test]
    fn timing_monotonicity(cfg in arb_config(), n in 2usize..9) {
        let g = StepGraph::reference(&cfg, 0);
        let dev = DeviceSpec::h100();
        let eager = step_time(&g, &dev, CpuModel::healthy(), false);
        let graphed = step_time(&g, &dev, CpuModel::healthy(), true);
        prop_assert!(graphed.total_s <= eager.total_s + 1e-9);
        let sharded = dap::shard(&g, n);
        let sharded_busy = step_time(&sharded, &dev, CpuModel::healthy(), true).gpu_busy_s;
        prop_assert!(sharded_busy <= eager.gpu_busy_s + 1e-9);
    }

    /// The memory model is monotone: more DAP never increases the
    /// footprint; checkpointing never increases it; bf16 never increases
    /// it.
    #[test]
    fn memory_monotonicity(cfg in arb_config(), dap_n in 1usize..9) {
        let dev = DeviceSpec::h100();
        let base = memory::estimate(&cfg, dap_n, false, false).total_bytes();
        prop_assert!(memory::estimate(&cfg, dap_n + 1, false, false).total_bytes() <= base);
        prop_assert!(memory::estimate(&cfg, dap_n, true, false).total_bytes() <= base);
        prop_assert!(memory::estimate(&cfg, dap_n, false, true).total_bytes() <= base);
        let _ = dev;
    }

    /// Recycling multiplies forward work monotonically.
    #[test]
    fn recycling_monotone(cfg in arb_config(), r in 0usize..4) {
        let a = StepGraph::reference(&cfg, r);
        let b = StepGraph::reference(&cfg, r + 1);
        prop_assert!(b.ops.len() > a.ops.len());
        prop_assert!(total_bytes(&b) > total_bytes(&a));
    }
}
