//! Linear layers bound to named parameters, plus the bundled ("GEMM
//! batched") projection helper.

use sf_autograd::{Graph, ParamStore, Result, Var};
use sf_tensor::Tensor;

/// Splits a seed deterministically per parameter name.
fn name_seed(name: &str) -> u64 {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A named linear layer `y = x W^T (+ b)`.
///
/// Parameters live in the [`ParamStore`] under `"{name}.weight"` /
/// `"{name}.bias"` and are LeCun-normal initialized on first use.
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    in_dim: usize,
    out_dim: usize,
    bias: bool,
}

impl Linear {
    /// A linear layer with bias.
    pub fn new(name: impl Into<String>, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            name: name.into(),
            in_dim,
            out_dim,
            bias: true,
        }
    }

    /// A linear layer without bias (AlphaFold's attention projections).
    pub fn no_bias(name: impl Into<String>, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            name: name.into(),
            in_dim,
            out_dim,
            bias: false,
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter name prefix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Binds this layer's weight (and bias) into the tape.
    fn bind(&self, g: &mut Graph, store: &mut ParamStore) -> (Var, Option<Var>) {
        let wname = format!("{}.weight", self.name);
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        let w = g.use_param_or_init(store, &wname, || {
            Tensor::lecun_normal(&[out_dim, in_dim], in_dim, name_seed(&wname))
        });
        let b = if self.bias {
            let bname = format!("{}.bias", self.name);
            Some(g.use_param_or_init(store, &bname, || Tensor::zeros(&[out_dim])))
        } else {
            None
        };
        (w, b)
    }

    /// Applies the layer to `x` of shape `[..., in_dim]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x`'s last dimension is not `in_dim`.
    pub fn apply(&self, g: &mut Graph, store: &mut ParamStore, x: Var) -> Result<Var> {
        let (w, b) = self.bind(g, store);
        let wt = g.permute(w, &[1, 0])?;
        let y = g.matmul(x, wt)?;
        match b {
            Some(b) => g.add(y, b),
            None => Ok(y),
        }
    }
}

/// Applies several independent projections of the *same* input as one
/// bundled operation — the model-side counterpart of the paper's "GEMM
/// Batching" (§3.3.1): the four linear layers before MHA have no mutual
/// dependency, so they are fused into one wide GEMM and split.
///
/// Numerically identical to applying each [`Linear`] separately (tested).
///
/// # Errors
///
/// Returns an error on dimension mismatch or an empty layer list.
pub fn batched_apply(
    g: &mut Graph,
    store: &mut ParamStore,
    layers: &[&Linear],
    x: Var,
) -> Result<Vec<Var>> {
    // Bind all weights, concat along the output dim, single GEMM, split.
    let mut ws = Vec::with_capacity(layers.len());
    let mut bs = Vec::with_capacity(layers.len());
    for l in layers {
        let (w, b) = l.bind(g, store);
        ws.push(w);
        bs.push(b);
    }
    let stacked = g.concat(&ws, 0)?;
    let wt = g.permute(stacked, &[1, 0])?;
    let big = g.matmul(x, wt)?;
    let rank = g.value(big).rank();
    let mut outs = Vec::with_capacity(layers.len());
    let mut col = 0usize;
    for (l, b) in layers.iter().zip(bs) {
        let piece = g.slice_axis(big, rank - 1, col, col + l.out_dim)?;
        let out = match b {
            Some(b) => g.add(piece, b)?,
            None => piece,
        };
        outs.push(out);
        col += l.out_dim;
    }
    Ok(outs)
}

/// Binds a named LayerNorm (`"{name}.gamma"` / `"{name}.beta"`) and applies
/// it over the last axis of `x`.
///
/// # Errors
///
/// Returns an error if `dim` mismatches `x`'s last axis.
pub fn layer_norm(
    g: &mut Graph,
    store: &mut ParamStore,
    name: &str,
    dim: usize,
    x: Var,
) -> Result<Var> {
    let gamma = g.use_param_or_init(store, &format!("{name}.gamma"), || Tensor::ones(&[dim]));
    let beta = g.use_param_or_init(store, &format!("{name}.beta"), || Tensor::zeros(&[dim]));
    g.layer_norm(x, gamma, beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_determinism() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let l = Linear::new("test.proj", 6, 4);
        let x = g.constant(Tensor::randn(&[3, 6], 1));
        let y = l.apply(&mut g, &mut store, x).unwrap();
        assert_eq!(g.value(y).dims(), &[3, 4]);

        // Same store, fresh tape: identical output (weights persisted).
        let mut g2 = Graph::new();
        let x2 = g2.constant(Tensor::randn(&[3, 6], 1));
        let y2 = l.apply(&mut g2, &mut store, x2).unwrap();
        assert_eq!(g.value(y), g2.value(y2));
    }

    #[test]
    fn different_names_different_weights() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[1, 4]));
        let a = Linear::no_bias("a", 4, 4).apply(&mut g, &mut store, x).unwrap();
        let b = Linear::no_bias("b", 4, 4).apply(&mut g, &mut store, x).unwrap();
        assert_ne!(g.value(a), g.value(b));
    }

    #[test]
    fn batched_apply_equals_individual() {
        let mut store = ParamStore::new();
        let l1 = Linear::no_bias("q", 8, 6);
        let l2 = Linear::no_bias("k", 8, 6);
        let l3 = Linear::new("v", 8, 10);

        let x0 = Tensor::randn(&[2, 5, 8], 2);
        let mut g = Graph::new();
        let x = g.constant(x0.clone());
        let bundled = batched_apply(&mut g, &mut store, &[&l1, &l2, &l3], x).unwrap();

        let mut g2 = Graph::new();
        let x2 = g2.constant(x0);
        let y1 = l1.apply(&mut g2, &mut store, x2).unwrap();
        let y2 = l2.apply(&mut g2, &mut store, x2).unwrap();
        let y3 = l3.apply(&mut g2, &mut store, x2).unwrap();

        assert!(g.value(bundled[0]).allclose(g2.value(y1), 1e-5));
        assert!(g.value(bundled[1]).allclose(g2.value(y2), 1e-5));
        assert!(g.value(bundled[2]).allclose(g2.value(y3), 1e-5));
    }

    #[test]
    fn batched_apply_gradients_flow() {
        let mut store = ParamStore::new();
        let l1 = Linear::no_bias("g1", 4, 3);
        let l2 = Linear::no_bias("g2", 4, 3);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 4], 3));
        let outs = batched_apply(&mut g, &mut store, &[&l1, &l2], x).unwrap();
        let s = g.add(outs[0], outs[1]).unwrap();
        let loss = g.sum_all(s).unwrap();
        g.backward(loss).unwrap();
        let grads = g.grads_by_name().unwrap();
        assert!(grads.contains_key("g1.weight"));
        assert!(grads.contains_key("g2.weight"));
        assert!(grads["g1.weight"].norm() > 0.0);
    }

    #[test]
    fn layer_norm_binds_params() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(&[4, 8], 5));
        let y = layer_norm(&mut g, &mut store, "ln", 8, x).unwrap();
        assert_eq!(g.value(y).dims(), &[4, 8]);
        assert!(store.get("ln.gamma").is_some());
        assert!(store.get("ln.beta").is_some());
    }

    #[test]
    fn lecun_init_scale() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let l = Linear::no_bias("scale.test", 256, 64);
        let x = g.constant(Tensor::zeros(&[1, 256]));
        let _ = l.apply(&mut g, &mut store, x).unwrap();
        let w = store.get("scale.test.weight").unwrap();
        let std = w.square().mean_all().sqrt();
        let expect = 1.0 / (256f32).sqrt();
        assert!((std - expect).abs() < 0.2 * expect, "std {std} vs {expect}");
    }
}
